package baseline

import (
	"fmt"
	"math"
	"testing"

	"dhsketch/internal/chord"
	"dhsketch/internal/md4"
	"dhsketch/internal/sim"
)

// newScenario builds a ring with items placed `copies`× each.
func newScenario(t testing.TB, seed uint64, nodes, items, copies int) *Scenario {
	t.Helper()
	env := sim.NewEnv(seed)
	ring := chord.New(env, nodes)
	s := NewScenario(ring)
	ids := make([]uint64, items)
	for i := range ids {
		ids[i] = md4.Sum64([]byte(fmt.Sprintf("bl-item-%d", i)))
	}
	s.Place(ids, copies)
	return s
}

func TestScenarioPlacement(t *testing.T) {
	s := newScenario(t, 1, 64, 1000, 3)
	if s.TrueDistinct() != 1000 {
		t.Errorf("TrueDistinct = %d", s.TrueDistinct())
	}
	if s.TotalCopies() != 3000 {
		t.Errorf("TotalCopies = %d", s.TotalCopies())
	}
	// Copies of one item land on distinct nodes: no node may hold the
	// same item twice.
	for node, items := range s.local {
		seen := map[uint64]bool{}
		for _, it := range items {
			if seen[it] {
				t.Fatalf("node %x holds duplicate copies", node.ID())
			}
			seen[it] = true
		}
	}
}

func TestSingleNodeCounterExactButCentralized(t *testing.T) {
	s := newScenario(t, 2, 64, 2000, 2)
	c, err := NewSingleNodeCounter(s, "docs")
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Exact distinct count (it deduplicates by item ID)...
	if res.Estimate != 2000 {
		t.Errorf("estimate = %v", res.Estimate)
	}
	if !res.DuplicateInsensitive {
		t.Error("single-node counter with an ID set is duplicate-insensitive")
	}
	// ...but the counter node absorbed one message per copy: total
	// centralization (the constraint-3 violation).
	if res.MaxNodeLoad != int64(s.TotalCopies()) {
		t.Errorf("counter node load %d, want %d", res.MaxNodeLoad, s.TotalCopies())
	}
	q, err := c.Query()
	if err != nil {
		t.Fatal(err)
	}
	if q.Estimate != 2000 {
		t.Errorf("query estimate = %v", q.Estimate)
	}
}

func TestPushSumConverges(t *testing.T) {
	s := newScenario(t, 3, 128, 5000, 1)
	// After O(log N) + slack rounds, the initiator's estimate approaches
	// the total copy count.
	res := PushSum(s, 40)
	want := float64(s.TotalCopies())
	if math.Abs(res.Estimate-want)/want > 0.05 {
		t.Errorf("push-sum estimate %v, want ~%v", res.Estimate, want)
	}
	if res.DuplicateInsensitive {
		t.Error("push-sum is duplicate-sensitive")
	}
	// Cost: N messages per round.
	if res.Cost.Messages != int64(128*40) {
		t.Errorf("messages = %d, want %d", res.Cost.Messages, 128*40)
	}
}

func TestPushSumCountsCopiesNotDistinct(t *testing.T) {
	s := newScenario(t, 4, 64, 1000, 3)
	res := PushSum(s, 40)
	if math.Abs(res.Estimate-3000)/3000 > 0.1 {
		t.Errorf("estimate %v should track the 3000 copies, not 1000 distinct", res.Estimate)
	}
}

func TestPushSumMoreRoundsMoreAccurate(t *testing.T) {
	errAt := func(rounds int) float64 {
		s := newScenario(t, 5, 128, 5000, 1)
		res := PushSum(s, rounds)
		want := float64(s.TotalCopies())
		return math.Abs(res.Estimate-want) / want
	}
	if errAt(40) > errAt(5) && errAt(5) > 0.01 {
		t.Errorf("accuracy did not improve with rounds: %v vs %v", errAt(40), errAt(5))
	}
}

func TestConvergecastExact(t *testing.T) {
	s := newScenario(t, 6, 100, 3000, 2)
	res, err := Convergecast(s, false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The exact convergecast sums local counts: copies, not distinct.
	if res.Estimate != float64(s.TotalCopies()) {
		t.Errorf("estimate %v, want %d", res.Estimate, s.TotalCopies())
	}
	if res.DuplicateInsensitive {
		t.Error("raw convergecast is duplicate-sensitive")
	}
	// Two phases of N-1 tree edges.
	if res.Cost.Messages != int64(2*(100-1)) {
		t.Errorf("messages = %d, want %d", res.Cost.Messages, 2*(100-1))
	}
}

func TestConvergecastWithSketches(t *testing.T) {
	s := newScenario(t, 7, 100, 20000, 3)
	res, err := Convergecast(s, true, 256, 24)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DuplicateInsensitive {
		t.Error("sketch convergecast should be duplicate-insensitive")
	}
	// Merged sketches estimate the 20000 distinct items despite 60000
	// copies being stored.
	if math.Abs(res.Estimate-20000)/20000 > 0.25 {
		t.Errorf("estimate %v, want ~20000 distinct", res.Estimate)
	}
}

func TestSamplingExtrapolates(t *testing.T) {
	s := newScenario(t, 8, 256, 20000, 1)
	res := Sampling(s, 64)
	want := float64(s.TotalCopies())
	// Sampling 25% of nodes: expect single-digit-percent error under
	// uniform placement, but nothing tight.
	if math.Abs(res.Estimate-want)/want > 0.3 {
		t.Errorf("estimate %v, want ~%v", res.Estimate, want)
	}
	if res.DuplicateInsensitive {
		t.Error("sampling is duplicate-sensitive")
	}
	if res.MaxNodeLoad != 64 {
		t.Errorf("querier load = %d, want 64", res.MaxNodeLoad)
	}
}

func TestSamplingAccuracyImprovesWithSampleSize(t *testing.T) {
	errAt := func(size int, seed uint64) float64 {
		s := newScenario(t, seed, 256, 20000, 1)
		res := Sampling(s, size)
		want := float64(s.TotalCopies())
		return math.Abs(res.Estimate-want) / want
	}
	// Average over seeds to avoid flakiness.
	var small, large float64
	for seed := uint64(0); seed < 10; seed++ {
		small += errAt(8, 100+seed)
		large += errAt(128, 100+seed)
	}
	if large >= small {
		t.Errorf("sample 128 error %v not below sample 8 error %v", large/10, small/10)
	}
}

func TestSamplingClampsToNetworkSize(t *testing.T) {
	s := newScenario(t, 9, 32, 1000, 1)
	res := Sampling(s, 1000)
	// Sampling every node is exact.
	if res.Estimate != float64(s.TotalCopies()) {
		t.Errorf("full sample estimate %v, want %d", res.Estimate, s.TotalCopies())
	}
}
