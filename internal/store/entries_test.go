package store

import (
	"math"
	"testing"
)

// TestEntriesEnumeratesLiveTuplesWithExpiry asserts Entries returns
// exactly the live tuples, preserves each one's expiry tick (replica
// repair must not extend soft-state lifetimes), drops expired tuples,
// and yields a deterministic order.
func TestEntriesEnumeratesLiveTuplesWithExpiry(t *testing.T) {
	s := New()
	s.Set(Key{Metric: 7, Vector: 3, Bit: 2}, 100)
	s.Set(Key{Metric: 7, Vector: 1, Bit: 2}, 50)
	s.Set(Key{Metric: 7, Vector: 0, Bit: 5}, 0) // expiry 0 < now later; use forever instead
	s.Set(Key{Metric: 7, Vector: 0, Bit: 5}, math.MaxInt64)
	s.Set(Key{Metric: 2, Vector: 9, Bit: 1}, 80)

	got := s.Entries(10)
	want := []Entry{
		{Key{Metric: 2, Vector: 9, Bit: 1}, 80},
		{Key{Metric: 7, Vector: 1, Bit: 2}, 50},
		{Key{Metric: 7, Vector: 3, Bit: 2}, 100},
		{Key{Metric: 7, Vector: 0, Bit: 5}, math.MaxInt64},
	}
	if len(got) != len(want) {
		t.Fatalf("Entries returned %d tuples, want %d: %+v", len(got), len(want), got)
	}
	for i, e := range got {
		if e != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, e, want[i])
		}
	}

	// Advance past one expiry: the tuple disappears and the others keep
	// their original ticks.
	got = s.Entries(51)
	if len(got) != 3 {
		t.Fatalf("after expiry at 51: %d tuples, want 3: %+v", len(got), got)
	}
	for _, e := range got {
		if e.Key == (Key{Metric: 7, Vector: 1, Bit: 2}) {
			t.Fatal("expired tuple still enumerated")
		}
		if e.Expiry != 80 && e.Expiry != 100 && e.Expiry != math.MaxInt64 {
			t.Fatalf("expiry mutated: %+v", e)
		}
	}

	// Round-tripping through a second store preserves everything — the
	// repair path's exact operation.
	dst := New()
	for _, e := range s.Entries(51) {
		dst.Set(e.Key, e.Expiry)
	}
	a, b := s.Entries(51), dst.Entries(51)
	if len(a) != len(b) {
		t.Fatalf("round trip changed tuple count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round trip changed entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEntriesNilAndEmpty pins the edge cases the repair path hits.
func TestEntriesNilAndEmpty(t *testing.T) {
	s := New()
	if got := s.Entries(0); len(got) != 0 {
		t.Fatalf("empty store enumerated %d tuples", len(got))
	}
	s.Set(Key{Metric: 1, Vector: 0, Bit: 0}, 5)
	if got := s.Entries(6); len(got) != 0 {
		t.Fatalf("fully expired store enumerated %d tuples", len(got))
	}
}
