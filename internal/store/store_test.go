package store

import (
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"testing"

	"dhsketch/internal/metrics"
	"dhsketch/internal/obs"
	"dhsketch/internal/sim"
)

// refStore is the flat-map reference model the indexed store must stay
// observably equivalent to: one expiry tick per tuple, refresh in place,
// implicit deletion on read. Every read mirrors the indexed store's GC
// scope so the two models prune identically even under non-monotonic
// query times.
type refStore map[Key]int64

func (r refStore) set(k Key, expiry int64) { r[k] = expiry }

func (r refStore) has(k Key, now int64) bool {
	exp, ok := r[k]
	if !ok {
		return false
	}
	if exp < now {
		delete(r, k)
		return false
	}
	return true
}

func (r refStore) vectorsWithBit(metric uint64, bit uint8, now int64) []int32 {
	var out []int32
	for k, exp := range r {
		if k.Metric != metric || k.Bit != bit {
			continue
		}
		if exp < now {
			delete(r, k)
			continue
		}
		out = append(out, k.Vector)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r refStore) len_(now int64) int {
	for k, exp := range r {
		if exp < now {
			delete(r, k)
		}
	}
	return len(r)
}

func (r refStore) keys(now int64) []Key {
	r.len_(now)
	out := make([]Key, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		if a.Bit != b.Bit {
			return a.Bit < b.Bit
		}
		return a.Vector < b.Vector
	})
	return out
}

func equalVectors(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialAgainstReferenceMap drives the indexed store and the
// flat-map reference through the same long random operation sequence —
// sets with mixed finite/forever expiries, refreshes, reads at a
// drifting clock — and demands identical observable behavior at every
// step.
func TestDifferentialAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	s := New()
	ref := refStore{}
	now := int64(0)

	randKey := func() Key {
		return Key{
			Metric: rng.Uint64N(4),
			Vector: int32(rng.IntN(130)), // spans >2 bitset words
			Bit:    uint8(rng.IntN(6)),
		}
	}

	for step := 0; step < 20000; step++ {
		switch op := rng.IntN(10); {
		case op < 4: // set / refresh
			k := randKey()
			exp := now + int64(rng.IntN(60))
			if rng.IntN(5) == 0 {
				exp = math.MaxInt64 // TTL 0: never expires
			}
			s.Set(k, exp)
			ref.set(k, exp)
		case op < 7: // point lookup
			k := randKey()
			if got, want := s.Has(k, now), ref.has(k, now); got != want {
				t.Fatalf("step %d: Has(%v, %d) = %v, want %v", step, k, now, got, want)
			}
		case op < 9: // probe reply
			m, b := rng.Uint64N(4), uint8(rng.IntN(6))
			got := s.VectorsWithBit(m, b, now)
			want := ref.vectorsWithBit(m, b, now)
			if !equalVectors(got, want) {
				t.Fatalf("step %d: VectorsWithBit(%d, %d, %d) = %v, want %v", step, m, b, now, got, want)
			}
		default: // full sweep
			if got, want := s.Len(now), ref.len_(now); got != want {
				t.Fatalf("step %d: Len(%d) = %d, want %d", step, now, got, want)
			}
		}
		if rng.IntN(3) == 0 {
			now += int64(rng.IntN(8))
		}
	}

	// Final whole-store enumeration must agree exactly.
	got, want := s.Keys(now), ref.keys(now)
	if len(got) != len(want) {
		t.Fatalf("Keys: %d tuples, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Keys[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if s.Bytes(now) != int64(len(want))*TupleBytes {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(now), int64(len(want))*TupleBytes)
	}
}

// TestConcurrentProbesAndInserts exercises the store the way the
// simulation does — concurrent counting passes probing while insertions
// refresh tuples — and relies on the race detector (make verify runs the
// suite under -race) to catch unsynchronized access. Each prober owns
// its scratch buffer, mirroring metricState.scratch.
func TestConcurrentProbesAndInserts(t *testing.T) {
	s := New()
	for m := uint64(0); m < 4; m++ {
		for v := int32(0); v < 64; v++ {
			s.Set(Key{Metric: m, Vector: v, Bit: uint8(v % 8)}, int64(50+v))
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(g), 3))
			scratch := make([]uint64, 0, 2)
			for i := 0; i < 2000; i++ {
				m := rng.Uint64N(4)
				b := uint8(rng.IntN(8))
				now := int64(rng.IntN(120))
				if g%2 == 0 {
					scratch = s.AppendBitsWithBit(scratch, m, b, now)
					s.Has(Key{Metric: m, Vector: int32(rng.IntN(64)), Bit: b}, now)
					s.Len(now)
				} else {
					s.Set(Key{Metric: m, Vector: int32(rng.IntN(64)), Bit: b}, now+int64(rng.IntN(50)))
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestNilStoreAnswersEmpty covers the probe path's no-guard contract.
func TestNilStoreAnswersEmpty(t *testing.T) {
	var s *Store
	if got := s.AppendBitsWithBit(nil, 1, 2, 3); len(got) != 0 {
		t.Errorf("nil store AppendBitsWithBit = %v", got)
	}
	if got := s.VectorsWithBit(1, 2, 3); got != nil {
		t.Errorf("nil store VectorsWithBit = %v", got)
	}
}

// TestExpireEventsAggregate checks that the garbage-collecting read
// paths report each sweep as ONE aggregate KindExpire event carrying the
// deleted-tuple count — per-tuple events would leak sweep visit order
// into the trace and break byte-identical replay.
func TestExpireEventsAggregate(t *testing.T) {
	env := sim.NewEnv(1)
	rec := obs.NewRing(16)
	env.SetTracer(rec)
	s := NewTraced(42, env)
	for v := int32(0); v < 5; v++ {
		s.Set(Key{Metric: 1, Vector: v, Bit: 2}, 10)
	}
	s.Set(Key{Metric: 1, Vector: 9, Bit: 2}, 99)

	// One probe reply at now=50 expires the five v<5 tuples in one sweep.
	if got := s.VectorsWithBit(1, 2, 50); !equalVectors(got, []int32{9}) {
		t.Fatalf("VectorsWithBit = %v, want [9]", got)
	}
	evs := rec.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d expire events, want 1 aggregate: %v", len(evs), evs)
	}
	e := evs[0]
	if e.Kind != obs.KindExpire || e.Node != 42 || e.Bit != -1 || e.Arg != 5 {
		t.Fatalf("aggregate expire event = %+v", e)
	}

	// A sweep that deletes nothing must not emit an event.
	s.Len(50)
	if got := len(rec.Events()); got != 1 {
		t.Fatalf("empty sweep emitted an event (total %d)", got)
	}
}

// TestRefreshInvalidatesHeapEntry pins the lazy-invalidation contract:
// a refresh to a later expiry leaves the old heap entry behind, and the
// sweep must skip it instead of deleting the live tuple.
func TestRefreshInvalidatesHeapEntry(t *testing.T) {
	s := New()
	k := Key{Metric: 3, Vector: 7, Bit: 1}
	s.Set(k, 10)
	s.Set(k, 100) // refresh: stale heap entry at tick 10 remains
	if s.Len(50) != 1 {
		t.Fatal("sweep honored a stale heap entry and deleted a refreshed tuple")
	}
	if !s.Has(k, 50) {
		t.Fatal("refreshed tuple lost")
	}
	// Downgrade back to forever; the finite entry must go stale too.
	s.Set(k, math.MaxInt64)
	if s.Len(200) != 1 || !s.Has(k, 200) {
		t.Fatal("forever refresh did not survive the old finite expiry")
	}
}

// BenchmarkProbeReply measures the counting probe's read path on a node
// populated like one member of a busy 1024-node ring (8 metrics, ~40
// tuples each). AppendBitsWithBit into a reused scratch buffer is the
// hot-path variant and must not allocate.
func BenchmarkProbeReply(b *testing.B) {
	s := New()
	for m := uint64(0); m < 8; m++ {
		for i := 0; i < 40; i++ {
			s.Set(Key{Metric: m, Vector: int32(i % 64), Bit: uint8(i % 16)}, 1<<60)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	scratch := make([]uint64, 0, 1)
	for i := 0; i < b.N; i++ {
		scratch = s.AppendBitsWithBit(scratch, 3, uint8(i%16), 100)
		for _, w := range scratch {
			sink += int(w & 1)
		}
	}
	_ = sink
}

// TestProbeReplyZeroAllocWithNilRuntime is the regression companion of
// BenchmarkProbeReply for the runtime-metrics hookup (DESIGN.md §15):
// an uninstrumented store — nil registry, so every Runtime counter is
// nil — must keep the probe read path at exactly zero heap allocations.
// The nil-receiver counter calls cost one branch each and nothing else.
func TestProbeReplyZeroAllocWithNilRuntime(t *testing.T) {
	s := New()
	s.Instrument(Runtime{}) // explicit metrics-off state
	for m := uint64(0); m < 8; m++ {
		for i := 0; i < 40; i++ {
			s.Set(Key{Metric: m, Vector: int32(i % 64), Bit: uint8(i % 16)}, 1<<60)
		}
	}
	scratch := make([]uint64, 0, 1)
	var sink int
	n := testing.AllocsPerRun(200, func() {
		scratch = s.AppendBitsWithBit(scratch, 3, 5, 100)
		for _, w := range scratch {
			sink += int(w & 1)
		}
	})
	_ = sink
	if n != 0 {
		t.Errorf("probe reply with nil runtime counters allocated %.1f/op, want 0", n)
	}
}

// TestRuntimeCounters exercises the instrumented paths end to end: sets,
// probe reads, sweep passes, and expiry accounting across both GC
// paths (heap sweep and collecting probe read).
func TestRuntimeCounters(t *testing.T) {
	r := metrics.New()
	rt := Runtime{
		Sets:    r.Counter("sets", ""),
		Probes:  r.Counter("probes", ""),
		Sweeps:  r.Counter("sweeps", ""),
		Expired: r.Counter("expired", ""),
	}
	s := New()
	s.Instrument(rt)

	s.Set(Key{Metric: 1, Vector: 0, Bit: 0}, 10) // expires at 10
	s.Set(Key{Metric: 1, Vector: 1, Bit: 0}, forever)
	s.Set(Key{Metric: 1, Vector: 1, Bit: 0}, forever) // refresh counts too
	if got := rt.Sets.Value(); got != 3 {
		t.Errorf("Sets = %d, want 3", got)
	}

	// Probe read at now=50 garbage-collects the expired vector 0.
	if vs := s.VectorsWithBit(1, 0, 50); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("VectorsWithBit = %v, want [1]", vs)
	}
	if got := rt.Probes.Value(); got != 1 {
		t.Errorf("Probes = %d, want 1", got)
	}
	if got := rt.Expired.Value(); got != 1 {
		t.Errorf("Expired after probe GC = %d, want 1", got)
	}

	// A heap sweep pass: Len drains the due heap.
	s.Set(Key{Metric: 2, Vector: 3, Bit: 1}, 60)
	if n := s.Len(100); n != 1 {
		t.Fatalf("Len(100) = %d, want 1", n)
	}
	if got := rt.Sweeps.Value(); got != 1 {
		t.Errorf("Sweeps = %d, want 1", got)
	}
	if got := rt.Expired.Value(); got != 2 {
		t.Errorf("Expired after sweep = %d, want 2", got)
	}
}

// BenchmarkProbeReplyVectors is the allocating convenience variant, kept
// for comparison against BenchmarkProbeReply.
func BenchmarkProbeReplyVectors(b *testing.B) {
	s := New()
	for m := uint64(0); m < 8; m++ {
		for i := 0; i < 40; i++ {
			s.Set(Key{Metric: m, Vector: int32(i % 64), Bit: uint8(i % 16)}, 1<<60)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(s.VectorsWithBit(3, uint8(i%16), 100))
	}
	_ = sink
}
