// Package store implements the per-node DHS tuple store as an
// access-path-shaped index. The paper's data model is a flat set of
// <metric_id, vector_id, bit, time_out> tuples (§3.2); the operations
// the data plane actually performs against it are not flat at all:
//
//   - a counting probe asks "which vectors of metric μ have bit r set?"
//     once per still-unresolved metric per probed node — the single
//     hottest read in the system;
//   - an insertion sets (or refreshes) exactly one tuple;
//   - TTL garbage collection must find expired tuples without scanning
//     live ones (§3.3's implicit deletion is free on the wire; it should
//     be near-free on the CPU too).
//
// The index is therefore two-level: a map keyed by (metric, bit) whose
// leaf holds the vectors as a bitset of ⌈m/64⌉ words plus an optional
// per-vector expiry array, and a min-heap of (expiry, leaf, vector)
// entries so expiry sweeps touch only entries that are actually due.
// A probe reply is answered in O(m/64) word copies out of the leaf —
// independent of how many metrics, bits, or tuples the node carries —
// and, via AppendBitsWithBit, with zero heap allocations at steady
// state.
//
// The observable semantics are exactly the flat map's: Set refreshes in
// place, the read paths garbage-collect expired tuples on the way and
// report each sweep as one aggregate expire event, and a nil *Store
// answers probes like an empty one.
package store

import (
	"math"
	"math/bits"
	"sort"
	"sync"

	"dhsketch/internal/metrics"
	"dhsketch/internal/obs"
	"dhsketch/internal/sim"
)

// TupleBytes is the wire size of one DHS tuple under the §5.1 size
// model: metric_id, vector_id, bit, and time_out packed into 64 bits.
const TupleBytes = 8

// forever is the expiry tick meaning "no expiry" (TTL 0).
const forever = math.MaxInt64

// Key identifies one DHS bit: which metric, which bitmap vector, and
// which bit position. The on-the-wire form is the paper's
// <metric_id, vector_id, bit, time_out> tuple; time_out is the value,
// not part of the key.
type Key struct {
	Metric uint64
	Vector int32
	Bit    uint8
}

// leafKey addresses one leaf of the index: all vectors of one
// (metric, bit) pair. It is exactly the access path of a counting
// probe.
type leafKey struct {
	metric uint64
	bit    uint8
}

// leaf holds the vectors of one (metric, bit) pair as a bitset. exp is
// nil until a finite expiry is stored — the common TTL-0 case pays no
// per-vector expiry memory and no GC work at all. When non-nil, exp has
// 64 entries per bitset word; a set bit v is live at time now iff
// exp == nil or exp[v] >= now.
type leaf struct {
	bits []uint64
	exp  []int64
}

// grow extends the bitset (and the expiry array, if present) to cover
// word index w.
func (lf *leaf) grow(w int) {
	for len(lf.bits) <= w {
		lf.bits = append(lf.bits, 0)
	}
	if lf.exp != nil {
		lf.growExp()
	}
}

// growExp brings the expiry array to 64 slots per bitset word, filling
// new slots with forever (bits set before any finite expiry existed
// never expire).
func (lf *leaf) growExp() {
	for len(lf.exp) < 64*len(lf.bits) {
		lf.exp = append(lf.exp, forever)
	}
}

// expiry returns the expiry tick of vector v (which must have its bit
// set).
func (lf *leaf) expiry(v int32) int64 {
	if lf.exp == nil {
		return forever
	}
	return lf.exp[v]
}

// expEntry is one pending expiry: vector v of leaf lf falls due at
// tick at. Entries are lazily invalidated — a refresh rewrites
// lf.exp[v], a sweep clears the bit — and skipped when popped stale, so
// neither path has to search the heap.
type expEntry struct {
	at int64
	lf *leaf
	v  int32
}

// expHeap is a min-heap of pending expiries ordered by due tick. The
// sift operations are hand-rolled rather than container/heap's: the
// interface-based API would box every entry on push, and Set is on the
// insertion hot path.
type expHeap []expEntry

// push adds an entry and restores the heap order.
func (h *expHeap) push(e expEntry) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].at <= q[i].at {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

// pop removes and returns the entry with the smallest due tick.
func (h *expHeap) pop() expEntry {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = expEntry{} // drop the leaf reference
	*h = q[:n]
	q = q[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q[l].at < q[smallest].at {
			smallest = l
		}
		if r < n && q[r].at < q[smallest].at {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// Store is the per-node DHS state: the set of bits this node is
// responsible for, each with its soft-state expiry time. A node stores
// at most one tuple per (metric, vector, bit); repeated insertions of
// items mapping to the same bit merely refresh the timestamp (§3.2).
//
// All methods are safe for concurrent use: probes garbage-collect
// expired tuples on the way, so even the read paths mutate the index
// and take the mutex. This is what lets any number of counting passes
// run against one overlay at once.
type Store struct {
	mu     sync.Mutex
	leaves map[leafKey]*leaf
	live   int     // live tuples, net of every completed sweep
	due    expHeap // pending finite expiries, lazily invalidated

	// owner and env are set by NewTraced so the garbage-collecting read
	// paths can report TTL expiry to the environment's tracer. Both stay
	// zero/nil for untraced stores.
	owner uint64
	env   *sim.Env

	// rt holds optional runtime counters (Instrument). The zero value —
	// all nil — is the metrics-off state: every update below is a method
	// call on a nil instrument, which costs one branch and zero
	// allocations (the BenchmarkProbeReply regression in store_test.go
	// pins this). The counters are clock-free atomics, so instrumented
	// simulation stores stay deterministic.
	rt Runtime
}

// Runtime is the store's runtime-metrics hookup: operational counters
// a deployment registry (internal/metrics) aggregates across the
// node's lifetime. Any field may be nil; the zero value disables
// everything.
type Runtime struct {
	// Sets counts Set calls (inserts and refreshes).
	Sets *metrics.Counter
	// Probes counts probe reads (AppendBitsWithBit / VectorsWithBit).
	Probes *metrics.Counter
	// Sweeps counts expiry-heap sweep passes (Len, Keys, Entries, Bytes).
	Sweeps *metrics.Counter
	// Expired counts tuples deleted by TTL garbage collection, on every
	// GC path — heap sweeps and the collecting read paths alike.
	Expired *metrics.Counter
}

// New returns an empty, untraced store.
func New() *Store {
	return &Store{leaves: make(map[leafKey]*leaf)}
}

// NewTraced returns an empty store that reports its TTL expiry sweeps
// against the owning node's ID. The tracer is read from the environment
// at GC time, not captured at creation, so stores created before
// SetTracer still report.
func NewTraced(owner uint64, env *sim.Env) *Store {
	return &Store{leaves: make(map[leafKey]*leaf), owner: owner, env: env}
}

// Instrument attaches runtime counters to the store. Call before the
// store is shared across goroutines (the fields are read without
// synchronization on the hot paths, relying on the attach-then-share
// ordering the server's lazy store creation provides).
func (s *Store) Instrument(rt Runtime) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rt = rt
}

// expire reports one garbage-collection sweep that deleted n expired
// tuples as a single aggregate event: per-tuple emission would leak the
// sweep's internal visit order into the trace.
func (s *Store) expire(now int64, n int) {
	if n == 0 {
		return
	}
	s.rt.Expired.Add(uint64(n))
	if s.env == nil {
		return
	}
	t := s.env.Tracer()
	if t == nil {
		return
	}
	t.Event(obs.Event{Tick: now, Kind: obs.KindExpire, Node: s.owner, Bit: -1, Arg: int64(n)})
}

// leafOf returns the leaf for (metric, bit), creating it on first use.
func (s *Store) leafOf(metric uint64, bit uint8) *leaf {
	lk := leafKey{metric: metric, bit: bit}
	lf := s.leaves[lk]
	if lf == nil {
		lf = &leaf{}
		s.leaves[lk] = lf
	}
	return lf
}

// Set records (or refreshes) one bit with the given expiry tick.
func (s *Store) Set(k Key, expiry int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rt.Sets.Inc()
	lf := s.leafOf(k.Metric, k.Bit)
	w := int(k.Vector) >> 6
	mask := uint64(1) << (uint(k.Vector) & 63)
	lf.grow(w)
	if lf.bits[w]&mask == 0 {
		lf.bits[w] |= mask
		s.live++
	}
	if expiry == forever {
		if lf.exp != nil {
			lf.exp[k.Vector] = forever
		}
		return
	}
	if lf.exp == nil {
		lf.growExp()
	}
	lf.exp[k.Vector] = expiry
	s.due.push(expEntry{at: expiry, lf: lf, v: k.Vector})
}

// Has reports whether the bit is present and unexpired at time now.
// Expired tuples are garbage-collected on the way (implicit deletion,
// §3.3: "deleting an item incurs no extra cost").
func (s *Store) Has(k Key, now int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	lf := s.leaves[leafKey{metric: k.Metric, bit: k.Bit}]
	if lf == nil {
		return false
	}
	w := int(k.Vector) >> 6
	mask := uint64(1) << (uint(k.Vector) & 63)
	if w >= len(lf.bits) || lf.bits[w]&mask == 0 {
		return false
	}
	if lf.expiry(k.Vector) < now {
		lf.bits[w] &^= mask
		s.live--
		s.expire(now, 1)
		return false
	}
	return true
}

// AppendBitsWithBit answers a counting probe for (metric, bit) by
// appending the leaf's bitset words to dst — bit v of word ⌊v/64⌋ set
// iff vector v's bit is present and live at time now — and returns the
// extended slice. It writes into dst's existing capacity, so a caller
// reusing a scratch buffer pays zero heap allocations at steady state.
// Expired tuples of this (metric, bit) pair are garbage-collected on
// the way, exactly like VectorsWithBit. A nil receiver answers like an
// empty store, so probe paths can use it without a guard.
func (s *Store) AppendBitsWithBit(dst []uint64, metric uint64, bit uint8, now int64) []uint64 {
	dst = dst[:0]
	if s == nil {
		return dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rt.Probes.Inc()
	lf := s.leaves[leafKey{metric: metric, bit: bit}]
	if lf == nil {
		return dst
	}
	if lf.exp == nil {
		return append(dst, lf.bits...)
	}
	expired := 0
	for wi, w := range lf.bits {
		for t := w; t != 0; t &= t - 1 {
			v := wi<<6 + bits.TrailingZeros64(t)
			if lf.exp[v] < now {
				w &^= 1 << uint(v&63)
				expired++
			}
		}
		lf.bits[wi] = w
		dst = append(dst, w)
	}
	s.live -= expired
	s.expire(now, expired)
	return dst
}

// VectorsWithBit returns, for the given metric and bit position, the
// set of vector indices whose bit is present and live at this node, in
// ascending order. The reply to a counting probe carries exactly this
// information, one bit per vector (⌈m/8⌉ bytes per metric). A nil
// receiver answers like an empty store. Hot paths should prefer
// AppendBitsWithBit, which reuses a caller-owned buffer.
func (s *Store) VectorsWithBit(metric uint64, bit uint8, now int64) []int32 {
	words := s.AppendBitsWithBit(nil, metric, bit, now)
	var out []int32
	for wi, w := range words {
		for ; w != 0; w &= w - 1 {
			out = append(out, int32(wi<<6+bits.TrailingZeros64(w)))
		}
	}
	return out
}

// Entry is one live tuple together with its expiry tick — the unit of
// replica repair. Repair must re-place a tuple with its original
// soft-state deadline: extending the TTL on copy would let a tuple
// outlive its item's refresh cycle just because the ring churned.
type Entry struct {
	Key    Key
	Expiry int64
}

// Entries returns the live tuples at time now with their expiry ticks,
// in the same deterministic (metric, bit, vector) order as Keys,
// garbage-collecting expired ones on the way.
func (s *Store) Entries(now int64) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expire(now, s.sweep(now))
	lks := make([]leafKey, 0, len(s.leaves))
	for lk := range s.leaves {
		lks = append(lks, lk)
	}
	sort.Slice(lks, func(i, j int) bool {
		if lks[i].metric != lks[j].metric {
			return lks[i].metric < lks[j].metric
		}
		return lks[i].bit < lks[j].bit
	})
	out := make([]Entry, 0, s.live)
	for _, lk := range lks {
		lf := s.leaves[lk]
		for wi, w := range lf.bits {
			for ; w != 0; w &= w - 1 {
				v := int32(wi<<6 + bits.TrailingZeros64(w))
				out = append(out, Entry{
					Key:    Key{Metric: lk.metric, Vector: v, Bit: lk.bit},
					Expiry: lf.expiry(v),
				})
			}
		}
	}
	return out
}

// sweep garbage-collects every tuple expired at time now by draining
// the due heap, and returns how many it deleted. Stale entries —
// refreshed to a later tick or already collected by a read path — cost
// one pop each and delete nothing.
func (s *Store) sweep(now int64) int {
	s.rt.Sweeps.Inc()
	expired := 0
	for len(s.due) > 0 && s.due[0].at < now {
		e := s.due.pop()
		lf := e.lf
		w := int(e.v) >> 6
		mask := uint64(1) << (uint(e.v) & 63)
		if w < len(lf.bits) && lf.bits[w]&mask != 0 && lf.exp != nil && lf.exp[e.v] == e.at {
			lf.bits[w] &^= mask
			expired++
		}
	}
	s.live -= expired
	return expired
}

// Len returns the number of live tuples at time now, garbage-collecting
// expired ones.
func (s *Store) Len(now int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expire(now, s.sweep(now))
	return s.live
}

// Bytes returns the storage footprint of the live tuples at time now in
// wire-model bytes.
func (s *Store) Bytes(now int64) int64 {
	return int64(s.Len(now)) * TupleBytes
}

// Keys returns the live tuples at time now in deterministic
// (metric, bit, vector) order, garbage-collecting expired ones — the
// enumeration tests use to compare whole-overlay placements.
func (s *Store) Keys(now int64) []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expire(now, s.sweep(now))
	lks := make([]leafKey, 0, len(s.leaves))
	for lk := range s.leaves {
		lks = append(lks, lk)
	}
	sort.Slice(lks, func(i, j int) bool {
		if lks[i].metric != lks[j].metric {
			return lks[i].metric < lks[j].metric
		}
		return lks[i].bit < lks[j].bit
	})
	out := make([]Key, 0, s.live)
	for _, lk := range lks {
		lf := s.leaves[lk]
		for wi, w := range lf.bits {
			for ; w != 0; w &= w - 1 {
				v := int32(wi<<6 + bits.TrailingZeros64(w))
				out = append(out, Key{Metric: lk.metric, Vector: v, Bit: lk.bit})
			}
		}
	}
	return out
}
