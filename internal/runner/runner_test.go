package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, n, want int
	}{
		{1, 100, 1},
		{4, 100, 4},
		{0, 100, runtime.GOMAXPROCS(0)}, // default: one per CPU
		{-3, 100, runtime.GOMAXPROCS(0)},
		{8, 3, 3}, // never more workers than jobs
		{8, 0, 1}, // degenerate job counts still yield a sane pool
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.n); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.n, got, c.want)
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		got, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapIdenticalAcrossWorkerCounts(t *testing.T) {
	// The determinism contract: self-contained jobs produce bit-identical
	// result slices at every worker count.
	run := func(workers int) []string {
		out, err := Map(37, workers, func(i int) (string, error) {
			return fmt.Sprintf("job-%d:%d", i, i*31), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverged at %d: %q vs %q", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapLowestErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(50, workers, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errLow
			case 33:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want the lowest-index failure", workers, err)
		}
	}
}

func TestMapRunsAllJobsOnce(t *testing.T) {
	var calls [64]atomic.Int32
	if _, err := Map(64, 4, func(i int) (struct{}, error) {
		calls[i].Add(1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Errorf("job %d ran %d times", i, n)
		}
	}
}

func TestMapActuallyConcurrent(t *testing.T) {
	// Two jobs rendezvous: each waits for the other to start, which can
	// only complete if two workers run them simultaneously.
	var barrier sync.WaitGroup
	barrier.Add(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := Map(2, 2, func(i int) (int, error) {
			barrier.Done()
			barrier.Wait()
			return i, nil
		}); err != nil {
			t.Error(err)
		}
	}()
	<-done
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return i, nil })
	if err != nil || got != nil {
		t.Errorf("Map(0) = %v, %v", got, err)
	}
}
