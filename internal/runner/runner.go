// Package runner is the parallel trial engine the experiment drivers run
// on: a worker pool that fans independent jobs — each building its own
// sim.Env, overlay, and Derive-seeded RNG streams — across goroutines
// while keeping the output deterministic.
//
// Determinism contract: Map returns results in job-index order, and a job
// never observes which worker ran it or in what order jobs were
// scheduled. As long as each job is self-contained (it derives all its
// randomness from its own inputs and shares no mutable state with other
// jobs), the result slice is bit-for-bit identical to a sequential run at
// every worker count — including Workers(1), which runs the jobs inline
// with no goroutines at all.
package runner

import (
	"runtime"
	"sync"
)

// Workers resolves a requested worker count: values below 1 mean "one
// worker per available CPU" (GOMAXPROCS). The result is never larger than
// needed for n jobs.
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if n >= 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn(0), …, fn(n-1) across at most workers goroutines and
// returns the results in index order. workers below 1 means GOMAXPROCS.
//
// Error semantics are deterministic: if any job fails, Map returns
// (nil, err) where err is the failing job with the lowest index —
// regardless of worker count or scheduling order. All n jobs are run
// even after a failure (an error aborts the whole experiment anyway, and
// finishing guarantees the lowest failing index is actually discovered).
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = Workers(workers, n)
	results := make([]T, n)

	if workers == 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		mu       sync.Mutex
		next     int // next unclaimed job index
		firstErr error
		errIdx   = n // index of firstErr; n = none
		wg       sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		// Keep claiming even after a failure: a lower-index job may fail
		// too, and the contract promises the lowest failing index wins.
		if next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	record := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && i < errIdx {
			firstErr, errIdx = err, i
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				r, err := fn(i)
				if err != nil {
					record(i, err)
					continue
				}
				results[i] = r // each index is written by exactly one worker
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
