package dhsketch_test

import (
	"fmt"
	"math"
	"testing"

	"dhsketch"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	net := dhsketch.NewNetwork(42, 128)
	d, err := dhsketch.New(net, dhsketch.Config{M: 32})
	if err != nil {
		t.Fatal(err)
	}
	metric := dhsketch.MetricID("api-test")
	const n = 40000
	for i := 0; i < n; i++ {
		if _, err := d.Insert(metric, dhsketch.ItemID(fmt.Sprintf("it-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	est, err := d.Count(metric)
	if err != nil {
		t.Fatal(err)
	}
	if e := math.Abs(est.Value-n) / n; e > 0.6 {
		t.Errorf("estimate %v for n=%d", est.Value, n)
	}
	if est.Cost.Hops <= 0 || est.Cost.NodesVisited <= 0 {
		t.Error("cost accounting missing")
	}
	if net.TrafficTotal().Messages == 0 {
		t.Error("network traffic meter untouched")
	}
}

func TestPublicAPIEstimatorFamilies(t *testing.T) {
	net := dhsketch.NewNetwork(7, 64)
	p, err := dhsketch.NewPCSA(net, dhsketch.Config{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	h, err := dhsketch.NewWithKind(net, dhsketch.Config{M: 16}, dhsketch.HyperLogLog)
	if err != nil {
		t.Fatal(err)
	}
	metric := dhsketch.MetricID("families")
	for i := 0; i < 20000; i++ {
		// Insert once (the distributed state is shared by both handles).
		if _, err := p.Insert(metric, dhsketch.ItemID(fmt.Sprintf("f-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	pe, err := p.Count(metric)
	if err != nil {
		t.Fatal(err)
	}
	he, err := h.Count(metric)
	if err != nil {
		t.Fatal(err)
	}
	for name, est := range map[string]float64{"PCSA": pe.Value, "HLL": he.Value} {
		if e := math.Abs(est-20000) / 20000; e > 0.7 {
			t.Errorf("%s estimate %v", name, est)
		}
	}
}

func TestPublicAPIHistogramAndOptimizer(t *testing.T) {
	net := dhsketch.NewNetwork(9, 64)
	d, err := dhsketch.New(net, dhsketch.Config{M: 16})
	if err != nil {
		t.Fatal(err)
	}
	spec := dhsketch.HistogramSpec{Relation: "R", Attribute: "a", Min: 1, Max: 100, Buckets: 4}
	b, err := dhsketch.NewHistogramBuilder(d, spec)
	if err != nil {
		t.Fatal(err)
	}
	nodes := net.Nodes()
	for i := 0; i < 20000; i++ {
		src := nodes[i%len(nodes)]
		if _, err := b.Record(src, dhsketch.ItemID(fmt.Sprintf("h-%d", i)), 1+i%100); err != nil {
			t.Fatal(err)
		}
	}
	h, err := dhsketch.ReconstructHistogram(d, spec, net.RandomNode())
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Counts) != 4 {
		t.Fatalf("buckets = %d", len(h.Counts))
	}
	if e := math.Abs(h.Total()-20000) / 20000; e > 0.7 {
		t.Errorf("histogram total %v", h.Total())
	}

	// Optimizer over mixed exact/DHS statistics.
	exact := dhsketch.HistogramFromCounts(spec, []int{5000, 5000, 5000, 5000})
	tables := []dhsketch.TableStats{
		{Name: "R", Hist: h, TupleBytes: 100},
		{Name: "S", Hist: exact, TupleBytes: 200},
		{Name: "T", Hist: exact, TupleBytes: 50},
	}
	plan := dhsketch.OptimizeJoin(tables)
	naiveWorst := dhsketch.LeftDeepJoin(tables, []int{1, 0, 2})
	if plan.Bytes <= 0 || plan.Bytes > naiveWorst.Bytes+1e-6 {
		t.Errorf("optimized plan %v vs left-deep %v", plan.Bytes, naiveWorst.Bytes)
	}
}

func TestPublicAPIFailuresAndClock(t *testing.T) {
	net := dhsketch.NewNetwork(11, 64)
	d, err := dhsketch.New(net, dhsketch.Config{M: 16, TTL: 10})
	if err != nil {
		t.Fatal(err)
	}
	metric := dhsketch.MetricID("ttl")
	for i := 0; i < 5000; i++ {
		if _, err := d.Insert(metric, dhsketch.ItemID(fmt.Sprintf("x-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	net.FailNodes(8)
	if len(net.Nodes()) != 56 {
		t.Errorf("nodes after failures = %d", len(net.Nodes()))
	}
	net.AdvanceClock(11)
	est, err := d.Count(metric)
	if err != nil {
		t.Fatal(err)
	}
	if est.Value > 500 {
		t.Errorf("estimate %v after TTL expiry", est.Value)
	}
}

func TestPublicAPIRetryLimit(t *testing.T) {
	if got := dhsketch.RetryLimit(64, 64, 0.99, 1, 0); got < 1 || got > 5 {
		t.Errorf("RetryLimit = %d, want the paper's ≤ 5 at alpha=1", got)
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	net := dhsketch.NewNetwork(23, 128)
	fo := net.InjectFaults(dhsketch.FaultConfig{DropProb: 0.15, TransientFrac: 0.1})
	d, err := dhsketch.New(net, dhsketch.Config{M: 16, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	metric := dhsketch.MetricID("faulty")
	failed := 0
	for i := 0; i < 8000; i++ {
		if _, err := d.Insert(metric, dhsketch.ItemID(fmt.Sprintf("f-%d", i))); err != nil {
			failed++
		}
	}
	if float64(failed)/8000 > 0.05 {
		t.Errorf("%d/8000 inserts failed despite retries", failed)
	}
	est, err := d.Count(metric)
	if err != nil {
		t.Fatalf("count errored under injected faults: %v", err)
	}
	if !est.Quality.Degraded || est.Quality.ProbesFailed == 0 {
		t.Errorf("quality not annotated: %+v", est.Quality)
	}
	if math.Abs(est.Value-8000)/8000 > 0.6 {
		t.Errorf("estimate %v far from 8000", est.Value)
	}
	st := fo.Stats()
	if st.Lost == 0 || st.Failed() == 0 {
		t.Errorf("fault layer stats empty: %+v", st)
	}
	// A network without injected faults stays pristine: no errors, no
	// degradation marks.
	clean := dhsketch.NewNetwork(23, 128)
	dClean, err := dhsketch.New(clean, dhsketch.Config{M: 16, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := dClean.Insert(metric, dhsketch.ItemID(fmt.Sprintf("c-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	cleanEst, err := dClean.Count(metric)
	if err != nil {
		t.Fatal(err)
	}
	if cleanEst.Quality.Degraded {
		t.Errorf("clean network marked degraded: %+v", cleanEst.Quality)
	}
}
