// Ablation benchmarks for the design decisions DESIGN.md §6 calls out:
// each compares the paper's default behaviour against a variant this
// implementation adds, reporting accuracy and probe cost side by side.
package dhsketch_test

import (
	"fmt"
	"math"
	"testing"

	"dhsketch/internal/chord"
	"dhsketch/internal/core"
	"dhsketch/internal/sim"
	"dhsketch/internal/sketch"
)

// ablationRun builds a fresh overlay, inserts n items, and counts with
// the given config, returning |relative error| and the counting cost.
func ablationRun(b *testing.B, seed uint64, nodes, n int, cfg core.Config, adaptive bool) (float64, core.CountCost) {
	b.Helper()
	env := sim.NewEnv(seed)
	ring := chord.New(env, nodes)
	cfg.Overlay = ring
	cfg.Env = env
	d, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	metric := core.MetricID("ablation")
	for i := 0; i < n; i++ {
		if _, err := d.Insert(metric, core.ItemID(fmt.Sprintf("ab-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	var est core.Estimate
	if adaptive {
		est, err = d.CountAdaptive(metric, 0.99)
	} else {
		est, err = d.Count(metric)
	}
	if err != nil {
		b.Fatal(err)
	}
	return math.Abs(est.Value-float64(n)) / float64(n), est.Cost
}

// BenchmarkAblationTrimmedScan compares Algorithm 1's full-bitmap scan
// (the paper probes bit positions that cannot be set when m > 1) against
// the trimmed scan starting at k − log₂(m).
func BenchmarkAblationTrimmedScan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := core.Config{M: 128, Kind: sketch.KindSuperLogLog}
		errFull, costFull := ablationRun(b, 1, 256, 100000, base, false)
		trimmed := base
		trimmed.TrimmedScan = true
		errTrim, costTrim := ablationRun(b, 1, 256, 100000, trimmed, false)
		b.ReportMetric(float64(costFull.NodesVisited), "full-visited")
		b.ReportMetric(float64(costTrim.NodesVisited), "trimmed-visited")
		b.ReportMetric(100*errFull, "full-err%")
		b.ReportMetric(100*errTrim, "trimmed-err%")
	}
}

// BenchmarkAblationEdgeAware compares the blind successor retry walk of
// Algorithm 1 against the boundary-aware walk that also descends to
// predecessors — the variant that rescues sparse-interval bits.
func BenchmarkAblationEdgeAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// α ≈ 0.6: sparse enough that walk policy matters.
		base := core.Config{M: 128, Kind: sketch.KindPCSA}
		errBlind, costBlind := ablationRun(b, 2, 256, 20000, base, false)
		aware := base
		aware.EdgeAware = true
		errAware, costAware := ablationRun(b, 2, 256, 20000, aware, false)
		b.ReportMetric(100*errBlind, "blind-err%")
		b.ReportMetric(100*errAware, "aware-err%")
		b.ReportMetric(float64(costBlind.NodesVisited), "blind-visited")
		b.ReportMetric(float64(costAware.NodesVisited), "aware-visited")
	}
}

// BenchmarkAblationAdaptiveLim compares the constant lim = 5 against the
// two-phase eq. 6 budget in the degraded α < 1 regime.
func BenchmarkAblationAdaptiveLim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.Config{M: 128, Kind: sketch.KindSuperLogLog}
		errConst, costConst := ablationRun(b, 3, 256, 20000, cfg, false)
		errAdapt, costAdapt := ablationRun(b, 3, 256, 20000, cfg, true)
		b.ReportMetric(100*errConst, "lim5-err%")
		b.ReportMetric(100*errAdapt, "adaptive-err%")
		b.ReportMetric(float64(costConst.NodesVisited), "lim5-visited")
		b.ReportMetric(float64(costAdapt.NodesVisited), "adaptive-visited")
	}
}

// BenchmarkAblationTruncation compares super-LogLog's θ₀ = 0.7
// truncation against plain LogLog on identical distributed state.
func BenchmarkAblationTruncation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sll := core.Config{M: 128, Kind: sketch.KindSuperLogLog}
		ll := core.Config{M: 128, Kind: sketch.KindLogLog}
		errS, _ := ablationRun(b, 4, 128, 100000, sll, false)
		errL, _ := ablationRun(b, 4, 128, 100000, ll, false)
		b.ReportMetric(100*errS, "sLL-err%")
		b.ReportMetric(100*errL, "LogLog-err%")
	}
}

// BenchmarkAblationBulkInsert compares per-item insertion against the
// bulk optimization on lookup count and the resulting counting accuracy
// when only a few nodes bulk-insert (the concentration caveat).
func BenchmarkAblationBulkInsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := sim.NewEnv(5)
		ring := chord.New(env, 128)
		d, err := core.New(core.Config{Overlay: ring, Env: env, M: 16, Kind: sketch.KindSuperLogLog})
		if err != nil {
			b.Fatal(err)
		}
		metric := core.MetricID("bulk-ablation")
		ids := make([]uint64, 50000)
		for j := range ids {
			ids[j] = core.ItemID(fmt.Sprintf("blk-%d", j))
		}
		// Per-item from random sources.
		var itemLookups int
		for _, id := range ids {
			c, err := d.Insert(metric, id)
			if err != nil {
				b.Fatal(err)
			}
			itemLookups += c.Lookups
		}
		// Bulk of the same items from 8 sources under another metric.
		metric2 := core.MetricID("bulk-ablation-2")
		var bulkLookups int
		per := len(ids) / 8
		for s := 0; s < 8; s++ {
			c, err := d.BulkInsertFrom(ring.Nodes()[s*10], metric2, ids[s*per:(s+1)*per])
			if err != nil {
				b.Fatal(err)
			}
			bulkLookups += c.Lookups
		}
		e1, err := d.Count(metric)
		if err != nil {
			b.Fatal(err)
		}
		e2, err := d.Count(metric2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(itemLookups), "item-lookups")
		b.ReportMetric(float64(bulkLookups), "bulk-lookups")
		b.ReportMetric(100*math.Abs(e1.Value-50000)/50000, "item-err%")
		b.ReportMetric(100*math.Abs(e2.Value-50000)/50000, "bulk8src-err%")
	}
}
