// Command benchjson converts `go test -bench` text output on stdin into
// a machine-readable JSON document on stdout, so benchmark runs can be
// committed as perf-trajectory points (BENCH_*.json) and diffed across
// revisions by tools instead of eyeballs.
//
//	go test -run=NONE -bench=. -benchtime=2s . ./internal/store | go run ./cmd/benchjson
//
// Each benchmark result line becomes one record: the benchmark name
// (GOMAXPROCS suffix stripped, so trajectories compare across machines),
// the package it lives in, the iteration count, and every value/unit
// pair — the standard ns/op, B/op, allocs/op plus any custom
// b.ReportMetric units (hops/pass, est@metric0, ...). Header lines
// (goos, goarch, cpu) are carried through as environment metadata. The
// output contains nothing run-dependent beyond the measurements
// themselves — no timestamps — so re-runs diff cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*document, error) {
	doc := &document{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseResult(line)
			if !ok {
				continue
			}
			b.Pkg = pkg
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines on stdin")
	}
	return doc, nil
}

// parseResult decodes one result line: the benchmark name, the iteration
// count, then (value, unit) pairs.
//
//	BenchmarkProbeReply-8   42064866   56.23 ns/op   0 B/op   0 allocs/op
func parseResult(line string) (benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, false
	}
	b := benchmark{
		Name:       stripProcs(fields[0]),
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// stripProcs removes the trailing -GOMAXPROCS suffix the testing package
// appends to benchmark names.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
