// Command calibrate derives the α̃_m bias-correction constants for the
// truncated super-LogLog estimator (the paper's eq. 2) by Monte-Carlo
// simulation: for each m = 2^c it inserts known numbers of distinct
// pseudo-uniform hashes through the production sketch code path, computes
// the raw truncated statistic m₀ · 2^{(1/m₀)·Σ*M} (by evaluating the
// estimator with α̃ forced to 1), and sets α̃_m = mean over a sweep of
// cardinality ratios n/m of n / E[raw] — the bias oscillates slightly
// with log(n/m), so the sweep smooths the periodic component.
//
// The resulting table is baked into internal/sketch/alpha.go. Re-run this
// tool and paste its output there if the truncation rule or estimator
// form ever changes.
//
// Randomness: each m gets its own stream, PCG(-seed, m), so the table is
// reproducible for a given -seed (default 1 — the seed the baked-in
// constants were derived with) and the rows are independent of the
// [-cmin, -cmax] range requested.
//
// Usage:
//
//	calibrate [-cmin 1] [-cmax 16] [-seed 1] [-budget 2e8]
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"

	"dhsketch/internal/sketch"
)

func main() {
	cmin := flag.Int("cmin", 1, "smallest log2(m) to calibrate")
	cmax := flag.Int("cmax", 16, "largest log2(m) to calibrate")
	seed := flag.Uint64("seed", 1, "PRNG seed")
	budget := flag.Float64("budget", 2e8, "approximate insertions per m value")
	flag.Parse()

	fmt.Println("// α̃_m calibration (paste into internal/sketch/alpha.go)")
	for c := *cmin; c <= *cmax; c++ {
		m := 1 << c
		alpha := calibrate(c, m, *seed, *budget)
		fmt.Printf("\t%.5f, // m=%d\n", alpha, m)
	}
}

// calibrate estimates α̃_m for one m = 2^c.
func calibrate(c, m int, seed uint64, budget float64) float64 {
	// Evaluate the estimator raw, with the constant forced to 1.
	sketch.SetCalibrationConstant(c, 1.0)
	rng := rand.New(rand.NewPCG(seed, uint64(m)))

	// Cardinality ratios n/m to average over: half-decade log2 steps
	// across one full decade.
	ratios := []float64{64, 91, 128, 181, 256, 362, 512, 724, 1024}
	var sumAlpha float64
	for _, ratio := range ratios {
		n := int(ratio * float64(m))
		trials := int(budget / float64(len(ratios)) / float64(n))
		if trials < 8 {
			trials = 8
		}
		if trials > 20000 {
			trials = 20000
		}
		var rawSum float64
		for t := 0; t < trials; t++ {
			rawSum += rawEstimate(rng, m, n)
		}
		sumAlpha += float64(n) / (rawSum / float64(trials))
	}
	return sumAlpha / float64(len(ratios))
}

// rawEstimate inserts n distinct random hashes into a fresh super-LogLog
// sketch and returns its estimate (α̃ = 1 during calibration).
func rawEstimate(rng *rand.Rand, m, n int) float64 {
	s, err := sketch.NewSuperLogLog(m, 32)
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		s.Add(rng.Uint64())
	}
	return s.Estimate()
}
