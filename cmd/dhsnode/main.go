// Command dhsnode is the multi-process deployment of the Distributed
// Hash Sketch: each `dhsnode serve` process hosts one netdht ring
// member over real TCP, and the `insert` / `count` subcommands are
// thin clients that drive the DHS data plane over RPC. Five terminal
// windows (or scripts/smoke.sh) make an actual counting network:
//
//	dhsnode serve -listen 127.0.0.1:4001
//	dhsnode serve -listen 127.0.0.1:4002 -join 127.0.0.1:4001
//	...
//	dhsnode insert -entry 127.0.0.1:4001 -metric demo -items 2000
//	dhsnode count  -entry 127.0.0.1:4001 -metric demo -expect 2000 -tol 0.35
//
// Unlike everything under cmd/dhsbench, nothing here is simulated or
// deterministic: protocol rounds run on wall-clock tickers, failures
// are discovered by real connection errors, and two runs interleave
// differently. The sketch-geometry flags (-k, -m, -kind) must agree
// across every writer and reader of a metric.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dhsketch/internal/chord"
	"dhsketch/internal/core"
	"dhsketch/internal/metrics"
	"dhsketch/internal/netdht"
	"dhsketch/internal/sketch"
)

// chordProtocol bundles the round-period flags into the shared
// protocol config; the tick unit is maintenance-ticker fires.
func chordProtocol(stabilize, fixFingers, checkPred int64) chord.ProtocolConfig {
	return chord.ProtocolConfig{
		StabilizeEvery:  stabilize,
		FixFingersEvery: fixFingers,
		CheckPredEvery:  checkPred,
	}
}

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "serve":
		runServe(os.Args[2:])
	case "insert":
		runInsert(os.Args[2:])
	case "count":
		runCount(os.Args[2:])
	case "status":
		runStatus(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "dhsnode: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: dhsnode <subcommand> [flags]

subcommands:
  serve    host one ring member (join an existing ring via -join)
  insert   record items under a metric through any ring member
  count    estimate a metric's cardinality through any ring member
  status   query a member's admin endpoint (dhsnode status <admin-addr>)

run 'dhsnode <subcommand> -h' for the subcommand's flags
`)
}

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP address to listen on")
	join := fs.String("join", "", "address of an existing ring member to join (empty: start a new ring)")
	name := fs.String("name", "", "node name hashed into the ring identifier (default: the bound address)")
	period := fs.Duration("period", 50*time.Millisecond, "maintenance tick period")
	stabilize := fs.Int64("stabilize-every", 1, "stabilize round period, in ticks")
	fixFingers := fs.Int64("fix-fingers-every", 1, "fix-fingers round period, in ticks")
	checkPred := fs.Int64("check-pred-every", 2, "check-predecessor round period, in ticks")
	admin := fs.String("admin", "", "admin HTTP listen address for /metrics, /healthz, /statusz, /debug/pprof (empty: disabled)")
	quiet := fs.Bool("quiet", false, "suppress structured operational log lines (startup and fatal messages still print)")
	fs.Parse(args)

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	var reg *metrics.Registry
	if *admin != "" {
		reg = metrics.New()
	}
	s, err := netdht.NewServer(*listen, netdht.Options{
		Name:     *name,
		Protocol: chordProtocol(*stabilize, *fixFingers, *checkPred),
		Logf:     logf,
		Metrics:  reg,
	})
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("serving on %s (id %016x)", s.Addr(), s.ID())
	if *admin != "" {
		adminAddr, err := s.StartAdmin(*admin, reg)
		if err != nil {
			s.Close()
			log.Fatalf("serve: %v", err)
		}
		log.Printf("admin on %s", adminAddr)
	}

	if *join != "" {
		// The bootstrap may still be starting (scripts launch all
		// processes at once); retry with backoff before giving up.
		var jerr error
		for attempt := 0; attempt < 20; attempt++ {
			if jerr = s.Join(*join); jerr == nil {
				break
			}
			time.Sleep(250 * time.Millisecond)
		}
		if jerr != nil {
			s.Close()
			log.Fatalf("join %s: %v", *join, jerr)
		}
	}
	s.StartMaintenance(*period)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("received %v, shutting down", got)
	s.Close()
}

func runInsert(args []string) {
	fs := flag.NewFlagSet("insert", flag.ExitOnError)
	entry := fs.String("entry", "", "address of any ring member (required)")
	metric := fs.String("metric", "demo", "metric name")
	items := fs.Int("items", 1000, "number of distinct items to insert")
	prefix := fs.String("prefix", "item", "item label prefix (labels are <prefix>-<i>)")
	cc := clientFlags(fs)
	fs.Parse(args)

	c := mustClient(*entry, cc)
	defer c.Close()
	m := core.MetricID(*metric)
	start := time.Now()
	for i := 0; i < *items; i++ {
		if err := c.Insert(m, core.ItemID(fmt.Sprintf("%s-%d", *prefix, i))); err != nil {
			log.Fatalf("insert %d/%d: %v", i, *items, err)
		}
	}
	log.Printf("inserted %d items under %q in %v", *items, *metric, time.Since(start).Round(time.Millisecond))
}

func runCount(args []string) {
	fs := flag.NewFlagSet("count", flag.ExitOnError)
	entry := fs.String("entry", "", "address of any ring member (required)")
	metric := fs.String("metric", "demo", "metric name")
	expect := fs.Float64("expect", 0, "true cardinality to check against (0: report only)")
	tol := fs.Float64("tol", 0.35, "maximum relative error accepted with -expect")
	jsonOut := fs.Bool("json", false, "emit the CountResult as one JSON object on stdout (machine-readable)")
	cc := clientFlags(fs)
	fs.Parse(args)

	c := mustClient(*entry, cc)
	defer c.Close()
	start := time.Now()
	res, err := c.Count(core.MetricID(*metric))
	if err != nil {
		log.Fatalf("count: %v", err)
	}
	if *jsonOut {
		// The exact bytes dhsd serves for this metric: the canonical
		// CountResult encoding, nothing merged in.
		b, err := json.Marshal(res)
		if err != nil {
			log.Fatalf("count: encode: %v", err)
		}
		os.Stdout.Write(append(b, '\n'))
		if *expect > 0 {
			re := res.Estimate / *expect
			if re > 1 {
				re = re - 1
			} else {
				re = 1 - re
			}
			if re > *tol {
				os.Exit(1)
			}
		}
		return
	}
	fmt.Printf("metric=%q estimate=%.0f probes=%d failed=%d skipped=%d degraded=%v elapsed=%v\n",
		*metric, res.Estimate, res.ProbesAttempted, res.ProbesFailed, res.IntervalsSkipped,
		res.Degraded, time.Since(start).Round(time.Millisecond))
	if res.Degraded {
		fmt.Println("warning: scan lost evidence (failed probes or skipped intervals); estimate may be low")
	}
	if *expect > 0 {
		re := res.Estimate / *expect
		if re > 1 {
			re = re - 1
		} else {
			re = 1 - re
		}
		fmt.Printf("expected=%.0f relative-error=%.3f tolerance=%.3f\n", *expect, re, *tol)
		if re > *tol {
			fmt.Println("FAIL: estimate outside tolerance")
			os.Exit(1)
		}
		fmt.Println("OK: estimate within tolerance")
	}
}

// runStatus queries one node's admin endpoint: /statusz for the ring
// snapshot, /healthz for the verdict. Exits nonzero when the node is
// unreachable or unhealthy, so scripts can assert ring health.
func runStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	timeout := fs.Duration("timeout", 5*time.Second, "HTTP request timeout")
	fs.Parse(args)
	addr := fs.Arg(0)
	if addr == "" {
		log.Fatal("usage: dhsnode status <admin-addr>")
	}

	hc := &http.Client{Timeout: *timeout}
	var st netdht.Status
	resp, err := hc.Get("http://" + addr + "/statusz")
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("status: decode /statusz: %v", err)
	}

	healthy := false
	health := "unreachable"
	if hr, err := hc.Get("http://" + addr + "/healthz"); err == nil {
		body, _ := io.ReadAll(hr.Body)
		hr.Body.Close()
		healthy = hr.StatusCode == http.StatusOK
		health = strings.TrimSpace(string(body))
	}

	fmt.Printf("node id=%s name=%q addr=%s alive=%v linked=%v tick=%d\n",
		st.ID, st.Name, st.Addr, st.Alive, st.Linked, st.Tick)
	fmt.Printf("health ok=%v detail=%q\n", healthy, health)
	fmt.Printf("ring predecessor=%q successors=%d fingers=%d\n",
		st.Predecessor, len(st.Successors), st.Fingers)
	for i, succ := range st.Successors {
		fmt.Printf("successor[%d]=%s\n", i, succ)
	}
	fmt.Printf("store tuples=%d bytes=%d\n", st.StoreTuples, st.StoreBytes)
	fmt.Printf("load routed=%d probed=%d store_ops=%d\n", st.Routed, st.Probed, st.StoreOps)
	if !healthy {
		os.Exit(1)
	}
}

// clientCfg is the flag bundle shared by insert and count.
type clientCfg struct {
	k    *uint
	m    *int
	kind *string
	lim  *int
	ttl  *int64
	seed *uint64
}

func clientFlags(fs *flag.FlagSet) clientCfg {
	return clientCfg{
		k:    fs.Uint("k", 16, "bitmap length k (hash bits per item)"),
		m:    fs.Int("m", 64, "number of bitmap vectors m (power of two)"),
		kind: fs.String("kind", "sll", "estimator family: pcsa, sll, loglog, hll"),
		lim:  fs.Int("lim", 5, "per-interval probe budget"),
		ttl:  fs.Int64("ttl", 0, "tuple lifetime in ring ticks (0: no expiry)"),
		seed: fs.Uint64("seed", 1, "probe-target randomness seed"),
	}
}

func mustClient(entry string, cc clientCfg) *netdht.Client {
	if entry == "" {
		log.Fatal("-entry is required")
	}
	kind, err := parseKind(*cc.kind)
	if err != nil {
		log.Fatal(err)
	}
	c, err := netdht.NewClient(netdht.ClientConfig{
		Entry: entry,
		K:     *cc.k, M: *cc.m, Kind: kind, Lim: *cc.lim,
		TTL: *cc.ttl, Seed: *cc.seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func parseKind(s string) (sketch.Kind, error) {
	switch strings.ToLower(s) {
	case "pcsa":
		return sketch.KindPCSA, nil
	case "sll", "superloglog":
		return sketch.KindSuperLogLog, nil
	case "loglog", "ll":
		return sketch.KindLogLog, nil
	case "hll", "hyperloglog":
		return sketch.KindHyperLogLog, nil
	default:
		return 0, fmt.Errorf("unknown estimator kind %q (want pcsa, sll, loglog, or hll)", s)
	}
}
