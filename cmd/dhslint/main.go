// Command dhslint runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns — a multichecker for
// the determinism, maporder, dhterrors, panicmsg, and lockedcopy
// analyzers that enforce DESIGN.md §10's invariants.
//
// Usage:
//
//	dhslint [-list] [packages]
//
// Patterns follow the go tool's shape ("./...", "./internal/...",
// "./cmd/dhsbench"); the default is "./...". Findings print as
// file:line:col: analyzer: message, one per line, and a non-empty run
// exits 1 — wire it into CI as a gate. Intentional exceptions are
// annotated in the source with //dhslint:allow analyzer(reason).
//
// dhslint needs no configuration and no network: it type-checks the
// module from source with the standard library alone.
package main

import (
	"flag"
	"fmt"
	"os"

	"dhsketch/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewModuleLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhslint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhslint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.All(), pkgs, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhslint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dhslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
