// Command dhslint runs the repository's custom static-analysis suite
// (internal/lint) over the given package patterns — a multichecker for
// the determinism, maporder, dhterrors, panicmsg, lockedcopy,
// conndeadline, lockrpc, gorolifecycle, and wirebounds analyzers that
// enforce DESIGN.md §10's invariants.
//
// Usage:
//
//	dhslint [-list] [-sarif] [-baseline file] [-write-baseline file] [packages]
//
// Patterns follow the go tool's shape ("./...", "./internal/...",
// "./cmd/dhsbench"); the default is "./...". Findings print as
// file:line:col: analyzer: message, one per line, and a non-empty run
// exits 1 — wire it into CI as a gate. Intentional exceptions are
// annotated in the source with //dhslint:allow analyzer(reason); known
// legacy findings can instead live in a checked-in baseline file
// (-baseline to apply it, -write-baseline to regenerate it from the
// current findings).
//
// -sarif emits the findings as a SARIF 2.1.0 log on stdout instead of
// the text lines, for GitHub code-scanning annotations; the exit-code
// contract is unchanged.
//
// dhslint needs no configuration and no network: it type-checks the
// module from source with the standard library alone.
package main

import (
	"flag"
	"fmt"
	"os"

	"dhsketch/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	sarif := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	baselinePath := flag.String("baseline", "", "baseline file of tolerated findings to subtract")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewModuleLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhslint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhslint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.All(), pkgs, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhslint:", err)
		os.Exit(2)
	}

	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dhslint:", err)
			os.Exit(2)
		}
		diags = base.Filter(diags, loader.Root)
	}
	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, diags, loader.Root); err != nil {
			fmt.Fprintln(os.Stderr, "dhslint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "dhslint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	if *sarif {
		if err := lint.WriteSARIF(os.Stdout, lint.All(), diags, loader.Root); err != nil {
			fmt.Fprintln(os.Stderr, "dhslint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dhslint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
