// Command dhsd is the high-throughput query frontend for a DHS ring:
// one process that owns a netdht client and serves estimates over
// HTTP, absorbing read load the ring itself never sees. Three layers
// stand between a request and a ring fan-out (internal/serve):
//
//   - a sharded TTL cache of recent estimates (-cache-ttl),
//   - singleflight coalescing, so N concurrent queries for one metric
//     share a single Algorithm-1 scan (-coalesce),
//   - admission control that bounds concurrent fan-outs and sheds
//     excess queries with 429 instead of queueing without bound.
//
// A minimal deployment next to a ring from scripts/smoke.sh:
//
//	dhsd -entry 127.0.0.1:4001 -listen 127.0.0.1:8080
//	curl 'http://127.0.0.1:8080/count?metric=demo'
//
// The response body is the canonical JSON CountResult — byte-identical
// to `dhsnode count -json` against the same ring when the cache is off
// — with serving provenance in X-Dhs-Source / X-Dhs-Age-Ms headers.
// The sketch-geometry flags (-k, -m, -kind) must agree with every
// writer of the metrics served.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dhsketch/internal/metrics"
	"dhsketch/internal/netdht"
	"dhsketch/internal/serve"
	"dhsketch/internal/sketch"
)

func main() {
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	fs := flag.NewFlagSet("dhsd", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP address to serve /count, /healthz, /statusz, /metrics on")
	entry := fs.String("entry", "", "address of any ring member (required)")

	// Sketch geometry — must match the ring's writers.
	k := fs.Uint("k", 16, "bitmap length k (hash bits per item)")
	m := fs.Int("m", 64, "number of bitmap vectors m (power of two)")
	kindName := fs.String("kind", "sll", "estimator family: pcsa, sll, loglog, hll")
	lim := fs.Int("lim", 5, "per-interval probe budget")
	seed := fs.Uint64("seed", 1, "probe-target randomness seed")

	// Ring-client throughput knobs.
	peerConns := fs.Int("peer-conns", netdht.DefaultPeerConns, "pooled TCP connections per peer")
	probePar := fs.Int("probe-parallel", netdht.DefaultProbeParallel, "concurrent probes per counting interval (1: sequential scan)")

	// Serving knobs.
	cacheTTL := fs.Duration("cache-ttl", time.Second, "estimate cache lifetime (0: cache disabled)")
	cacheShards := fs.Int("cache-shards", 0, "cache shard count, rounded up to a power of two (0: default)")
	noCoalesce := fs.Bool("no-coalesce", false, "disable singleflight coalescing of concurrent same-metric queries")
	maxInFlight := fs.Int("max-in-flight", 0, "concurrent ring fan-out bound (0: default)")
	maxQueue := fs.Int("max-queue", 0, "admission queue depth (0: default 4x max-in-flight)")
	queueTimeout := fs.Duration("queue-timeout", 0, "longest a query waits for a fan-out slot before shedding (0: default)")
	fs.Parse(os.Args[1:])

	if *entry == "" {
		log.Fatal("dhsd: -entry is required")
	}
	kind, err := parseKind(*kindName)
	if err != nil {
		log.Fatalf("dhsd: %v", err)
	}

	reg := metrics.New()
	client, err := netdht.NewClient(netdht.ClientConfig{
		Entry: *entry,
		K:     *k, M: *m, Kind: kind, Lim: *lim, Seed: *seed,
		PeerConns:     *peerConns,
		ProbeParallel: *probePar,
		Metrics:       reg,
	})
	if err != nil {
		log.Fatalf("dhsd: %v", err)
	}

	frontend := serve.New(client, serve.Config{
		CacheTTL:     *cacheTTL,
		CacheShards:  *cacheShards,
		Coalesce:     !*noCoalesce,
		MaxInFlight:  *maxInFlight,
		MaxQueue:     *maxQueue,
		QueueTimeout: *queueTimeout,
		Metrics:      reg,
	})
	handler := serve.NewHandler(frontend, serve.HandlerOptions{
		Metrics: reg,
		Ping:    client.Ping,
	})

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("dhsd: listen %s: %v", *listen, err)
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hs.Serve(ln) // returns once the quit watcher closes hs
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-quit
		hs.Close()
	}()
	log.Printf("serving estimates on %s (ring entry %s, cache-ttl %v, coalesce %v)",
		ln.Addr(), *entry, *cacheTTL, !*noCoalesce)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	log.Printf("received %v, shutting down", got)
	close(quit)
	wg.Wait()
	client.Close()
}

func parseKind(s string) (sketch.Kind, error) {
	switch strings.ToLower(s) {
	case "pcsa":
		return sketch.KindPCSA, nil
	case "sll", "superloglog":
		return sketch.KindSuperLogLog, nil
	case "loglog", "ll":
		return sketch.KindLogLog, nil
	case "hll", "hyperloglog":
		return sketch.KindHyperLogLog, nil
	default:
		return 0, fmt.Errorf("unknown estimator kind %q (want pcsa, sll, loglog, or hll)", s)
	}
}
