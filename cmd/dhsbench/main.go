// Command dhsbench regenerates the paper's evaluation (§5): every table,
// figure, and quoted number has an experiment here (see DESIGN.md for the
// index). Each experiment prints a table in the paper's layout.
//
// Usage:
//
//	dhsbench [-experiment all|e1|...|e12|e12f|e13|e15] [-nodes 1024] [-scale 100]
//	         [-m 512] [-trials 20] [-buckets 100] [-seed 1] [-lim 5]
//	         [-workers N] [-trace file.jsonl] [-tracebuf N]
//	         [-cpuprofile file] [-memprofile file]
//
// Sweep-style experiments (e3, e4, e8, e12f) fan their independent cells
// across -workers goroutines (default: one per CPU). Every cell builds
// its own deterministic world from -seed, so the printed tables are
// byte-for-byte identical at any worker count.
//
// Observability: -trace streams every simulation event (lookups, probes,
// walk steps, stores, expiries, injected faults) to a JSONL file; with
// -workers 1 the file is byte-identical across runs. -tracebuf N keeps
// the last N events in a ring buffer and dumps them to stderr when an
// experiment fails — a flight recorder for debugging. -cpuprofile and
// -memprofile write standard runtime/pprof profiles for `go tool pprof`.
//
// The default scale divides the paper's 10–80 M-tuple relations by 100,
// keeping a full run under a minute. For paper-faithful counting accuracy
// use -scale 10 (α = n/(m·N) ≥ 1 at m = 512, as in §5.1), which inserts
// 15 M tuples and takes a few minutes; -scale 1 reproduces the full
// 150 M-tuple workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dhsketch/internal/experiments"
	"dhsketch/internal/obs"
)

func main() {
	var (
		exp     = flag.String("experiment", "all", "which experiment to run: all, e1..e12, e12f, or a comma list")
		nodes   = flag.Int("nodes", 0, "overlay size N (default 1024)")
		scale   = flag.Int("scale", 0, "relation scale divisor (default 100; 10 = paper-faithful alpha, 1 = full paper scale)")
		m       = flag.Int("m", 0, "default bitmap vectors (default 512)")
		trials  = flag.Int("trials", 0, "counting trials per configuration (default 20)")
		buckets = flag.Int("buckets", 0, "histogram buckets (default 100)")
		seed    = flag.Uint64("seed", 0, "master PRNG seed (default 1)")
		lim     = flag.Int("lim", 0, "probe retries per interval (default 5)")
		workers = flag.Int("workers", 0, "parallel experiment cells (default: one per CPU); results are identical at any value")

		traceFile  = flag.String("trace", "", "write a JSONL event trace to this file (deterministic with -workers 1)")
		traceBuf   = flag.Int("tracebuf", 0, "keep the last N events in memory; dumped to stderr if an experiment fails")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	p := experiments.Params{
		Seed:    *seed,
		Nodes:   *nodes,
		Scale:   *scale,
		M:       *m,
		Lim:     *lim,
		Buckets: *buckets,
		Trials:  *trials,
		Workers: *workers,
	}

	var sinks []obs.Tracer
	var jsonl *obs.JSONL
	var ring *obs.Ring
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		jsonl = obs.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	if *traceBuf > 0 {
		ring = obs.NewRing(*traceBuf)
		sinks = append(sinks, ring)
	}
	p.Tracer = obs.Multi(sinks...)

	want := map[string]bool{}
	for _, e := range strings.Split(strings.ToLower(*exp), ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]

	type runner struct {
		name string
		what string
		run  func() error
	}
	runners := []runner{
		{"e1", "insertion and maintenance costs (§5.2)", func() error {
			r, err := experiments.RunE1(p)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e2", "Table 2: counting costs", func() error {
			r, err := experiments.RunE2(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e3", "scalability sweep (figure omitted in paper)", func() error {
			r, err := experiments.RunE3(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e4", "accuracy vs number of bitmaps, incl. degradation", func() error {
			r, err := experiments.RunE4(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e5", "Table 3: histogram building costs", func() error {
			r, err := experiments.RunE5(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e6", "histogram per-cell accuracy", func() error {
			r, err := experiments.RunE6(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e7", "query optimization with DHS histograms", func() error {
			r, err := experiments.RunE7(p)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e8", "estimator stddev vs theory (§2.2)", func() error {
			r, err := experiments.RunE8(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e9", "retry-bound validation (§4.1, eq. 5/6)", func() error {
			r, err := experiments.RunE9(p)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e10", "fault tolerance: replication and bit-shift (§3.5)", func() error {
			r, err := experiments.RunE10(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e11", "baseline comparison (§1 constraints)", func() error {
			r, err := experiments.RunE11(p)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e12", "soft-state maintenance under churn (§3.3 trade-off)", func() error {
			r, err := experiments.RunE12(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e12f", "fault injection: graceful degradation under loss and down-windows", func() error {
			r, err := experiments.RunE12F(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e13", "load balance: per-node access and storage distributions (Table 3, constraint 3)", func() error {
			r, err := experiments.RunE13(p)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
		{"e15", "counting under stabilization churn: crash-stop faults, successor-list fallback, replica repair", func() error {
			r, err := experiments.RunE15(p, nil)
			if err != nil {
				return err
			}
			r.Render(os.Stdout)
			return nil
		}},
	}

	// finish flushes the trace file; fail additionally dumps the ring
	// buffer — the flight recorder's whole point is the moments before a
	// failure.
	finish := func() {
		if jsonl != nil {
			if err := jsonl.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			}
		}
	}
	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, format, args...)
		if ring != nil {
			events := ring.Events()
			fmt.Fprintf(os.Stderr, "last %d traced events:\n", len(events))
			dump := obs.NewJSONL(os.Stderr)
			for _, e := range events {
				dump.Event(e)
			}
			if err := dump.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "trace dump: %v\n", err)
			}
		}
		finish()
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		os.Exit(code)
	}

	ran := 0
	for _, r := range runners {
		if !all && !want[r.name] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", strings.ToUpper(r.name), r.what)
		//dhslint:allow determinism(operator-facing elapsed-time display; never enters a table)
		start := time.Now()
		if err := r.run(); err != nil {
			fail(1, "%s failed: %v\n", r.name, err)
		}
		//dhslint:allow determinism(operator-facing elapsed-time display; never enters a table)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fail(2, "unknown experiment %q; use all, e1..e13, e12f, or e15\n", *exp)
	}
	finish()

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // materialize final live-heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}
