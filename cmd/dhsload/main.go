// Command dhsload is a closed-loop load generator for the dhsd query
// frontend: a fixed set of workers each issue GET /count requests
// back-to-back (no open-loop arrival process), with metric popularity
// drawn from a Zipf distribution so a hot head exercises the cache and
// coalescing layers while a long tail forces real ring fan-outs — the
// access pattern DESIGN.md §16 sizes the frontend for.
//
//	dhsload -target http://127.0.0.1:8080 -concurrency 16 -duration 10s
//
// The run warms up for -warmup (samples discarded), then measures
// sustained throughput and latency. The report — qps, p50/p99/p999,
// error and shed counts, and the X-Dhs-Source serving-provenance mix —
// prints human-readable by default or as one JSON object with -json
// (the shape scripts/smoke.sh and the bench pipeline consume).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// workerStats is one worker's private tally; workers never share
// mutable state while the clock runs, so the hot loop takes no locks.
type workerStats struct {
	latencies []time.Duration // post-warmup successful requests
	requests  int
	errors    int
	shed      int
	degraded  int
	sources   [3]int // direct, cache, coalesced
}

var sourceNames = [3]string{"direct", "cache", "coalesced"}

func sourceIndex(s string) int {
	for i, n := range sourceNames {
		if s == n {
			return i
		}
	}
	return 0
}

// Report is dhsload's machine-readable result document.
type Report struct {
	Target      string  `json:"target"`
	Concurrency int     `json:"concurrency"`
	Metrics     int     `json:"metrics"`
	ZipfS       float64 `json:"zipf_s"`
	DurationSec float64 `json:"duration_seconds"`

	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Shed     int     `json:"shed"`
	Degraded int     `json:"degraded"`
	QPS      float64 `json:"qps"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`

	Sources map[string]int `json:"sources"`
}

func main() {
	log.SetFlags(0)
	fs := flag.NewFlagSet("dhsload", flag.ExitOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "dhsd base URL")
	concurrency := fs.Int("concurrency", 8, "closed-loop workers")
	duration := fs.Duration("duration", 5*time.Second, "measured run length (after warmup)")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "ramp time whose samples are discarded")
	nMetrics := fs.Int("metrics", 16, "distinct metric names to query")
	prefix := fs.String("prefix", "demo", "metric name prefix (names are <prefix>-<i>; -metrics 1 uses <prefix> alone)")
	zipfS := fs.Float64("zipf-s", 1.2, "Zipf skew s > 1 of metric popularity (rank 0 hottest)")
	seed := fs.Uint64("seed", 1, "popularity-draw randomness seed")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request HTTP timeout")
	jsonOut := fs.Bool("json", false, "emit the report as one JSON object on stdout")
	fs.Parse(os.Args[1:])

	names := make([]string, *nMetrics)
	for i := range names {
		names[i] = fmt.Sprintf("%s-%d", *prefix, i)
	}
	if *nMetrics == 1 {
		names[0] = *prefix
	}

	hc := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        2 * *concurrency,
			MaxIdleConnsPerHost: 2 * *concurrency,
		},
	}

	// One probe before unleashing the fleet: fail fast on a bad target.
	if resp, err := hc.Get(*target + "/count?metric=" + names[0]); err != nil {
		log.Fatalf("dhsload: target unreachable: %v", err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	start := time.Now()
	measureFrom := start.Add(*warmup)
	deadline := measureFrom.Add(*duration)
	stats := make([]workerStats, *concurrency)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker RNG: deterministic draws, no shared state.
			rng := rand.New(rand.NewPCG(*seed, uint64(w)+0x9e3779b97f4a7c15))
			zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(names)-1))
			st := &stats[w]
			for {
				issued := time.Now()
				if issued.After(deadline) {
					return
				}
				name := names[zipf.Uint64()]
				resp, err := hc.Get(*target + "/count?metric=" + name)
				done := time.Now()
				if done.Before(measureFrom) {
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					continue // warmup sample: discard
				}
				st.requests++
				if err != nil {
					st.errors++
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					st.latencies = append(st.latencies, done.Sub(issued))
					st.sources[sourceIndex(resp.Header.Get("X-Dhs-Source"))]++
					var cr struct {
						Degraded bool `json:"degraded"`
					}
					if json.Unmarshal(body, &cr) == nil && cr.Degraded {
						st.degraded++
					}
				case http.StatusTooManyRequests:
					st.shed++
				default:
					st.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(measureFrom)
	if elapsed > *duration {
		elapsed = *duration
	}

	rep := Report{
		Target:      *target,
		Concurrency: *concurrency,
		Metrics:     *nMetrics,
		ZipfS:       *zipfS,
		DurationSec: elapsed.Seconds(),
		Sources:     map[string]int{},
	}
	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		rep.Requests += st.requests
		rep.Errors += st.errors
		rep.Shed += st.shed
		rep.Degraded += st.degraded
		for s, n := range st.sources {
			if n > 0 {
				rep.Sources[sourceNames[s]] += n
			}
		}
		all = append(all, st.latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.P50Ms = percentileMs(all, 0.50)
	rep.P99Ms = percentileMs(all, 0.99)
	rep.P999Ms = percentileMs(all, 0.999)
	if elapsed > 0 {
		rep.QPS = float64(len(all)) / elapsed.Seconds()
	}

	if *jsonOut {
		b, err := json.Marshal(rep)
		if err != nil {
			log.Fatalf("dhsload: encode report: %v", err)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		fmt.Printf("target=%s concurrency=%d metrics=%d zipf_s=%.2f measured=%.2fs\n",
			rep.Target, rep.Concurrency, rep.Metrics, rep.ZipfS, rep.DurationSec)
		fmt.Printf("requests=%d ok=%d errors=%d shed=%d degraded=%d\n",
			rep.Requests, len(all), rep.Errors, rep.Shed, rep.Degraded)
		fmt.Printf("qps=%.0f p50=%.2fms p99=%.2fms p999=%.2fms\n",
			rep.QPS, rep.P50Ms, rep.P99Ms, rep.P999Ms)
		fmt.Printf("sources direct=%d cache=%d coalesced=%d\n",
			rep.Sources["direct"], rep.Sources["cache"], rep.Sources["coalesced"])
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// percentileMs reads the p-quantile from a sorted latency slice, in
// milliseconds (nearest-rank; 0 for an empty run).
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
