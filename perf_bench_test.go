// Data-plane hot-path benchmarks — the perf trajectory's tracked
// workloads (BENCH_5.json, DESIGN.md §12). Unlike the experiment
// benchmarks in bench_test.go, which regenerate whole evaluation tables,
// these isolate the per-operation cost of the three hot paths: the
// multi-metric counting walk, bulk insertion, and (in internal/store)
// the probe-reply answer itself.
package dhsketch_test

import (
	"fmt"
	"testing"

	dhsketch "dhsketch"
)

// hotRingNodes is the overlay size the trajectory benchmarks run
// against: big enough that finger routing depth and per-node store
// population dominate, small enough to build in seconds.
const hotRingNodes = 1024

// hotMetrics is the number of metrics counted in one multi-metric pass.
const hotMetrics = 8

// hotItemsPerMetric sizes the per-metric relation so a 1024-node ring
// holds a few hundred live tuples per node — the regime where the
// probe-reply scan cost is visible.
const hotItemsPerMetric = 40000

// newHotWorld builds the populated ring every trajectory benchmark runs
// against: hotMetrics relations bulk-inserted from 32 distinct source
// nodes each, m = 64 vectors.
func newHotWorld(b *testing.B) (*dhsketch.DHS, *dhsketch.Network, []uint64) {
	b.Helper()
	net := dhsketch.NewNetwork(1, hotRingNodes)
	d, err := dhsketch.New(net, dhsketch.Config{M: 64, K: 20})
	if err != nil {
		b.Fatal(err)
	}
	nodes := net.Nodes()
	metrics := make([]uint64, hotMetrics)
	for mi := range metrics {
		metrics[mi] = dhsketch.MetricID(fmt.Sprintf("hot-metric-%d", mi))
		const sources = 32
		per := hotItemsPerMetric / sources
		ids := make([]uint64, per)
		for s := 0; s < sources; s++ {
			for i := range ids {
				ids[i] = dhsketch.ItemID(fmt.Sprintf("hot-%d-%d-%d", mi, s, i))
			}
			src := nodes[(s*len(nodes))/sources]
			if _, err := d.BulkInsertFrom(src, metrics[mi], ids); err != nil {
				b.Fatal(err)
			}
		}
	}
	return d, net, metrics
}

// BenchmarkHotCountMultiMetric measures one multi-dimensional counting
// pass (8 metrics, one walk) against the populated 1024-node ring — the
// workload the indexed store and the cached finger tables exist for.
func BenchmarkHotCountMultiMetric(b *testing.B) {
	d, net, metrics := newHotWorld(b)
	src := net.Nodes()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ests, err := d.CountAllFrom(src, metrics)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(ests[0].Value, "est@metric0")
			b.ReportMetric(float64(ests[0].Cost.Hops), "hops/pass")
		}
	}
}

// BenchmarkHotCountSingleMetric is the single-metric baseline of the
// same walk, for the multi-metric amortization ratio.
func BenchmarkHotCountSingleMetric(b *testing.B) {
	d, net, metrics := newHotWorld(b)
	src := net.Nodes()[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.CountFrom(src, metrics[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotBulkInsert measures one bulk insertion round (one source,
// 1250 items, ≤ k lookups) against the populated ring. Re-inserting the
// same items refreshes their tuples in place: the steady-state refresh
// workload of §3.3.
func BenchmarkHotBulkInsert(b *testing.B) {
	d, net, metrics := newHotWorld(b)
	src := net.Nodes()[0]
	ids := make([]uint64, 1250)
	for i := range ids {
		ids[i] = dhsketch.ItemID(fmt.Sprintf("hot-bulk-%d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.BulkInsertFrom(src, metrics[0], ids); err != nil {
			b.Fatal(err)
		}
	}
}
