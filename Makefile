GO ?= go

.PHONY: build test vet lint fmtcheck race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repository's custom analyzers (internal/lint) over every
# package: determinism, maporder, dhterrors, panicmsg, lockedcopy. See
# DESIGN.md §10 for what each one enforces and why.
lint:
	$(GO) run ./cmd/dhslint ./...

# fmtcheck fails if any tracked Go file is not gofmt-clean.
fmtcheck:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: tier-1 (build + test) plus vet, the
# custom lint suite, formatting, and the race detector.
verify: build vet lint fmtcheck test race

bench:
	$(GO) test -bench=. -benchtime=1x .
