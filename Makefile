GO ?= go

.PHONY: build test vet lint fmtcheck race verify bench smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the repository's custom analyzers (internal/lint) over every
# package: determinism, maporder, dhterrors, panicmsg, lockedcopy,
# conndeadline, lockrpc, gorolifecycle, wirebounds. Findings listed in
# the checked-in baseline are tolerated; everything else fails the gate.
# See DESIGN.md §10 for what each analyzer enforces and why.
lint:
	$(GO) run ./cmd/dhslint -baseline .dhslint-baseline ./...

# fmtcheck fails if any tracked Go file is not gofmt-clean.
fmtcheck:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: tier-1 (build + test) plus vet, the
# custom lint suite, formatting, and the race detector.
verify: build vet lint fmtcheck test race

# smoke runs the multi-process end-to-end test: a 5-node dhsnode ring
# over loopback TCP, a known workload, and a counted estimate checked
# against the estimator's error envelope. Tune with NODES/ITEMS/TOL.
smoke:
	./scripts/smoke.sh

# bench runs the benchmark suite (root macro-benchmarks, the
# internal/store probe-reply micro-benchmarks, and the internal/serve
# sustained-throughput serving benchmarks — qps/p50/p99 against a real
# loopback ring) and converts the text output into machine-readable
# JSON via cmd/benchjson, so a run can be committed as a
# perf-trajectory point:
#
#   make bench BENCHTIME=2s BENCHJSON=BENCH_6.json
BENCHTIME ?= 1x
BENCHTXT  ?= bench.out
BENCHJSON ?= bench.json

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=$(BENCHTIME) . ./internal/store ./internal/serve | tee $(BENCHTXT)
	$(GO) run ./cmd/benchjson < $(BENCHTXT) > $(BENCHJSON)
	@echo "wrote $(BENCHJSON)"
