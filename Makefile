GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the full pre-merge gate: tier-1 (build + test) plus vet and
# the race detector.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x .
