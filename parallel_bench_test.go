// Benchmarks for the parallel experiment engine: the same multi-seed
// sweep at increasing worker counts. The jobs are independent
// deterministic trials (one world per seed), so the sweep scales with
// cores — compare the ns/op of the sub-benchmarks to read the speedup;
// on a 4-core machine workers=4 runs the sweep several times faster than
// workers=1, with byte-identical results (the determinism tests in
// internal/experiments pin that).
package dhsketch_test

import (
	"fmt"
	"runtime"
	"testing"

	"dhsketch/internal/experiments"
)

// sweepWorkerCounts is the ladder of worker counts benchmarked: the
// sequential baseline, 2, 4, and the machine's CPU count.
func sweepWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkSeedSweepE8 fans a multi-seed E8 estimator-validation sweep
// (CPU-bound local sketch trials) across the worker pool.
func BenchmarkSeedSweepE8(b *testing.B) {
	p := benchParams()
	p.Trials = 2 // ×5 = 10 sketch trials per cell
	seeds := experiments.Seeds(1, 8)
	for _, workers := range sweepWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pw := p
			pw.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := experiments.SeedSweep(pw, seeds, func(p experiments.Params) (*experiments.E8Result, error) {
					return experiments.RunE8(p, []int{256})
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(seeds) {
					b.Fatalf("got %d results for %d seeds", len(res), len(seeds))
				}
			}
		})
	}
}

// BenchmarkSeedSweepE4 is the distributed-counting variant: each seed
// builds a full overlay, loads the relations, and runs the E4 accuracy
// sweep at one bitmap count.
func BenchmarkSeedSweepE4(b *testing.B) {
	p := benchParams()
	p.Trials = 3
	seeds := experiments.Seeds(1, 4)
	for _, workers := range sweepWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pw := p
			pw.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := experiments.SeedSweep(pw, seeds, func(p experiments.Params) (*experiments.E4Result, error) {
					return experiments.RunE4(p, []int{64})
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != len(seeds) {
					b.Fatalf("got %d results for %d seeds", len(res), len(seeds))
				}
			}
		})
	}
}
