// Benchmarks regenerating the paper's evaluation — one per table/figure,
// per the DESIGN.md experiment index. Each benchmark runs the
// corresponding experiment driver at a reduced-but-faithful configuration
// (smaller overlay and scaled relations, same α = n/(m·N) regime where
// accuracy is concerned) and reports the headline quantities as custom
// benchmark metrics. Paper-fidelity runs: `go run ./cmd/dhsbench -scale 10`.
package dhsketch_test

import (
	"testing"

	"dhsketch/internal/experiments"
)

// benchParams keeps every benchmark iteration around a second.
func benchParams() experiments.Params {
	return experiments.Params{
		Seed:   1,
		Nodes:  256,
		Scale:  200, // Q..T = 50k..400k tuples
		M:      64,  // α(Q) = 50000/(64·256) ≈ 3: guaranteed regime
		Trials: 5,
	}
}

// BenchmarkE1Insertion regenerates §5.2 "Insertions and Maintenance":
// per-insertion hops/bytes and per-node storage.
func BenchmarkE1Insertion(b *testing.B) {
	p := benchParams()
	p.Buckets = 100
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE1(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgHopsPerInsert, "hops/insert")
		b.ReportMetric(res.AvgBytesPerInsert, "bytes/insert")
		b.ReportMetric(res.StoragePerNodeMean/1024, "kB-storage/node")
	}
}

// BenchmarkE2CountingTable2 regenerates Table 2: counting cost and error
// versus the number of bitmaps, sLL and PCSA.
func BenchmarkE2CountingTable2(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE2(p, []int{32, 64, 128})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.SLL.AvgVisited(), "sLL-visited")
		b.ReportMetric(last.SLL.AvgHops(), "sLL-hops")
		b.ReportMetric(100*last.SLL.AvgErr(), "sLL-err%")
		b.ReportMetric(100*last.PCSA.AvgErr(), "PCSA-err%")
	}
}

// BenchmarkE3Scalability regenerates the §5.2 scalability figure
// (omitted in the paper): counting hops versus overlay size.
func BenchmarkE3Scalability(b *testing.B) {
	p := benchParams()
	p.Scale = 500
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE3(p, []int{256, 1024})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].SLL.AvgHops(), "hops@256")
		b.ReportMetric(res.Rows[1].SLL.AvgHops(), "hops@1024")
	}
}

// BenchmarkE4AccuracySweep regenerates the §5.2 accuracy discussion:
// error versus bitmaps, into the degraded large-m regime.
func BenchmarkE4AccuracySweep(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE4(p, []int{32, 256, 1024})
		if err != nil {
			b.Fatal(err)
		}
		first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
		b.ReportMetric(100*first.ErrSLL, "sLL-err%@m32")
		b.ReportMetric(100*last.ErrSLL, "sLL-err%@m1024")
		b.ReportMetric(100*last.ErrPCSA, "PCSA-err%@m1024")
	}
}

// BenchmarkE5HistogramTable3 regenerates Table 3: histogram
// reconstruction costs.
func BenchmarkE5HistogramTable3(b *testing.B) {
	p := benchParams()
	p.Scale = 500
	p.Buckets = 20
	p.Trials = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE5(p, []int{16, 64})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.SLL.AvgVisited(), "sLL-visited")
		b.ReportMetric(last.SLL.AvgBytes()/1024, "sLL-kB")
	}
}

// BenchmarkE6HistogramAccuracy regenerates the per-cell histogram error
// numbers of §5.2.
func BenchmarkE6HistogramAccuracy(b *testing.B) {
	p := benchParams()
	p.Scale = 100 // enough per-bucket mass for small m
	p.Buckets = 20
	p.Trials = 3
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE6(p, []int{16, 32, 64})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.M {
			case 16:
				b.ReportMetric(100*row.MeanCellErr, "cell-err%@m16")
			case 64:
				b.ReportMetric(100*row.MeanCellErr, "cell-err%@m64")
			}
		}
	}
}

// BenchmarkE7QueryOptimization regenerates the §5.2 query-processing
// comparison: optimal versus statistics-less plan bytes versus histogram
// reconstruction cost.
func BenchmarkE7QueryOptimization(b *testing.B) {
	p := benchParams()
	p.Nodes = 128
	p.M = 16
	p.Buckets = 20
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE7(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OptimalBytes/(1<<20), "optimal-MB")
		b.ReportMetric(res.NaiveBytes/(1<<20), "naive-MB")
		b.ReportMetric(res.HistReconBytes/1024, "recon-kB")
	}
}

// BenchmarkE8EstimatorStddev validates the §2.2 standard-error formulas
// on local sketches.
func BenchmarkE8EstimatorStddev(b *testing.B) {
	p := benchParams()
	p.Trials = 10
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE8(p, []int{256})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.M == 256 {
				b.ReportMetric(100*row.MeasuredStdDev, row.Kind.String()+"-σ%")
			}
		}
	}
}

// BenchmarkE9RetryBound validates eq. 5/6 of §4.1.
func BenchmarkE9RetryBound(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE9(p)
		if err != nil {
			b.Fatal(err)
		}
		if !res.DefaultLimSufficient {
			b.Fatal("lim=5 claim violated")
		}
	}
}

// BenchmarkE10FaultTolerance regenerates the §3.5 fault-tolerance
// trade-offs: error under failures for replication degrees and the
// bit-shift variant.
func BenchmarkE10FaultTolerance(b *testing.B) {
	p := benchParams()
	p.Scale = 500
	p.M = 16
	p.Trials = 5
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE10(p, []float64{0, 0.2})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.FailedFrac == 0.2 && (row.Variant == "R=0" || row.Variant == "R=3") {
				b.ReportMetric(100*row.Err, row.Variant+"-err%@20%fail")
			}
		}
	}
}

// BenchmarkE11Baselines regenerates the §1 constraint comparison: DHS
// versus the four related-work counting families.
func BenchmarkE11Baselines(b *testing.B) {
	p := benchParams()
	p.Scale = 200
	p.M = 16
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE11(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Method {
			case "DHS (sLL)":
				b.ReportMetric(float64(row.QueryMessages), "DHS-query-msgs")
				b.ReportMetric(100*row.Err, "DHS-err%")
			case "convergecast (sketches)":
				b.ReportMetric(float64(row.QueryMessages), "converge-query-msgs")
			}
		}
	}
}

// BenchmarkE12ChurnMaintenance regenerates the §3.3 soft-state trade-off:
// maintenance bandwidth versus counting error under continuous churn,
// for fast and slow refresh periods.
func BenchmarkE12ChurnMaintenance(b *testing.B) {
	p := benchParams()
	p.Nodes = 64
	p.Scale = 100
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE12(p, []int64{10, 80})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MaintBytesPerTick/1024, "fast-kB/tick")
		b.ReportMetric(res.Rows[1].MaintBytesPerTick/1024, "slow-kB/tick")
		b.ReportMetric(100*res.Rows[0].MeanErr, "fast-err%")
		b.ReportMetric(100*res.Rows[1].MeanErr, "slow-err%")
	}
}
