package dhsketch_test

import (
	"fmt"

	"dhsketch"
)

// Counting distinct items across a simulated overlay: the estimate is
// deterministic for a fixed seed, so this example's output is stable.
func Example() {
	net := dhsketch.NewNetwork(1, 256)
	d, err := dhsketch.New(net, dhsketch.Config{M: 64})
	if err != nil {
		panic(err)
	}
	metric := dhsketch.MetricID("documents")
	const n = 200000
	for i := 0; i < n; i++ {
		if _, err := d.Insert(metric, dhsketch.ItemID(fmt.Sprintf("doc-%d", i))); err != nil {
			panic(err)
		}
	}
	est, err := d.Count(metric)
	if err != nil {
		panic(err)
	}
	fmt.Printf("within 25%% of %d: %v\n", n, est.Value > 0.75*n && est.Value < 1.25*n)
	fmt.Printf("counting touched all %d nodes: %v\n", 256, est.Cost.NodesVisited == 256)
	// Output:
	// within 25% of 200000: true
	// counting touched all 256 nodes: false
}

// Duplicate insensitivity: replicas of the same item do not change the
// distributed bit state, so the estimate counts distinct items.
func Example_duplicates() {
	net := dhsketch.NewNetwork(2, 64)
	d, err := dhsketch.New(net, dhsketch.Config{M: 16, K: 20})
	if err != nil {
		panic(err)
	}
	metric := dhsketch.MetricID("files")
	for i := 0; i < 5000; i++ {
		id := dhsketch.ItemID(fmt.Sprintf("file-%d", i))
		for copy := 0; copy < 3; copy++ { // three peers share each file
			if _, err := d.Insert(metric, id); err != nil {
				panic(err)
			}
		}
	}
	one, _ := d.Count(metric)
	// Re-publishing everything again must not move the estimate.
	for i := 0; i < 5000; i++ {
		if _, err := d.Insert(metric, dhsketch.ItemID(fmt.Sprintf("file-%d", i))); err != nil {
			panic(err)
		}
	}
	two, _ := d.Count(metric)
	fmt.Println("estimate unchanged by duplicates:", one.Value == two.Value)
	// Output:
	// estimate unchanged by duplicates: true
}

// The eq. 6 probe budget: the paper's default lim = 5 is exactly the
// p = 0.99 budget at the α = 1 boundary.
func ExampleRetryLimit() {
	fmt.Println(dhsketch.RetryLimit(512, 512, 0.99, 1, 0))
	fmt.Println(dhsketch.RetryLimit(512, 128, 0.99, 1, 0)) // α = 0.25 needs more
	// Output:
	// 5
	// 19
}
