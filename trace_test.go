package dhsketch_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dhsketch"
)

// TestPublicTracing exercises the observability surface through the
// facade only: attach multiplexed sinks, run a workload, and read the
// load report and the nodes' counter summary back.
func TestPublicTracing(t *testing.T) {
	net := dhsketch.NewNetwork(9, 128)
	d, err := dhsketch.New(net, dhsketch.Config{M: 16})
	if err != nil {
		t.Fatal(err)
	}

	ring := dhsketch.NewTraceRing(4096)
	agg := dhsketch.NewTraceAggregator()
	var buf bytes.Buffer
	jsonl := dhsketch.NewTraceJSONL(&buf)
	net.AttachTracer(dhsketch.MultiTracer(ring, agg, jsonl))

	metric := dhsketch.MetricID("traced")
	const n = 3000
	for i := 0; i < n; i++ {
		if _, err := d.Insert(metric, dhsketch.ItemID(fmt.Sprintf("t-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Count(metric); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Flush(); err != nil {
		t.Fatal(err)
	}

	if ring.Total() == 0 {
		t.Fatal("ring sink saw nothing")
	}
	report := agg.Report(128)
	if report.Passes != 1 || report.TotalProbes() == 0 {
		t.Fatalf("report = %+v, want one pass with probes", report)
	}
	if report.StoresPerNode.Count != 128 {
		t.Fatalf("StoresPerNode.Count = %d, want the full overlay", report.StoresPerNode.Count)
	}
	for _, kind := range []string{`"kind":"store"`, `"kind":"lookup"`, `"kind":"probe"`} {
		if !strings.Contains(buf.String(), kind) {
			t.Errorf("JSONL missing %s events", kind)
		}
	}

	// The always-on counters tell the same story without any tracer.
	sum := net.LoadSummary()
	if sum.Nodes != 128 || sum.StoreOps.Mean == 0 {
		t.Fatalf("LoadSummary = %+v", sum)
	}
	if int64(sum.Probed.Mean*float64(sum.Nodes)) != report.TotalProbes() {
		t.Errorf("counters probed total %v != trace total %d",
			sum.Probed.Mean*float64(sum.Nodes), report.TotalProbes())
	}

	// Detach: the sinks must fall silent.
	net.AttachTracer(nil)
	before := ring.Total()
	if _, err := d.Count(metric); err != nil {
		t.Fatal(err)
	}
	if ring.Total() != before {
		t.Error("detached tracer still received events")
	}
}

// BenchmarkCountTraceOff measures the counting hot path with tracing
// disabled — the nil-check-only baseline the overhead budget in
// DESIGN.md §11 is written against.
func BenchmarkCountTraceOff(b *testing.B) {
	benchmarkCountTrace(b, false)
}

// BenchmarkCountTraceOn is the same walk with a ring sink attached, to
// bound the per-event cost when tracing is enabled.
func BenchmarkCountTraceOn(b *testing.B) {
	benchmarkCountTrace(b, true)
}

func benchmarkCountTrace(b *testing.B, traced bool) {
	net := dhsketch.NewNetwork(3, 1024)
	d, err := dhsketch.New(net, dhsketch.Config{M: 64})
	if err != nil {
		b.Fatal(err)
	}
	metric := dhsketch.MetricID("bench-trace")
	for i := 0; i < 20000; i++ {
		if _, err := d.Insert(metric, dhsketch.ItemID(fmt.Sprintf("bt-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if traced {
		net.AttachTracer(dhsketch.NewTraceRing(1 << 16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Count(metric); err != nil {
			b.Fatal(err)
		}
	}
}
