// Package dhsketch is the public API of the Distributed Hash Sketches
// library — a reproduction of "Counting at Large: Efficient Cardinality
// Estimation in Internet-Scale Data Networks" (Ntarmos, Triantafillou,
// Weikum; ICDE 2006).
//
// A Distributed Hash Sketch (DHS) estimates the number of distinct items
// in a multiset spread over a structured peer-to-peer overlay. It is
// fully decentralized (no counter node), duplicate-insensitive, imposes
// uniform access and storage load, and answers counting queries in
// O(k·log N) overlay hops regardless of how many items, bitmap vectors,
// or metrics are involved.
//
// # Quick start
//
//	net := dhsketch.NewNetwork(1, 1024)            // 1024-node Chord overlay
//	d, _ := dhsketch.New(net, dhsketch.Config{})   // DHS with the paper's defaults
//	metric := dhsketch.MetricID("shared-documents")
//	for _, doc := range docs {
//	    d.Insert(metric, dhsketch.ItemID(doc))     // from a random node
//	}
//	est, _ := d.Count(metric)                      // from a random node
//	fmt.Println(est.Value, est.Cost.Hops)
//
// Histograms over DHS (histogram subpackage semantics re-exported here)
// turn the same machinery into a selectivity-estimation substrate for
// internet-scale query optimization; see examples/queryopt.
//
// The package wraps the implementation in internal/: core (the DHS
// algorithms), chord (the overlay), sketch (PCSA, super-LogLog,
// HyperLogLog), histogram, optimizer, and sim (the deterministic
// simulation kernel).
package dhsketch

import (
	"io"

	"dhsketch/internal/chord"
	"dhsketch/internal/core"
	"dhsketch/internal/dht"
	"dhsketch/internal/faultdht"
	"dhsketch/internal/histogram"
	"dhsketch/internal/obs"
	"dhsketch/internal/optimizer"
	"dhsketch/internal/sim"
	"dhsketch/internal/sketch"
	"dhsketch/internal/stats"
)

// Re-exported core types. The DHS handle is a client-side view: all
// durable state lives on the overlay's nodes, so independently created
// handles with equal parameters interoperate.
type (
	// Config parameterizes a DHS; its zero value (plus the Network
	// passed to New) reproduces the paper's defaults: k = 24, m = 512,
	// lim = 5, super-LogLog... except Kind, which defaults to
	// super-LogLog only through New (the sketch.Kind zero value is PCSA).
	Config = core.Config
	// DHS is the distributed sketch handle.
	DHS = core.DHS
	// Estimate is a counting result with its cost breakdown.
	Estimate = core.Estimate
	// CountCost itemizes a counting operation's network cost.
	CountCost = core.CountCost
	// InsertCost itemizes an insertion's network cost.
	InsertCost = core.InsertCost
	// Quality annotates an Estimate with how much of the counting walk
	// failed or was skipped under the failure model.
	Quality = core.Quality
	// Node is an overlay node handle.
	Node = dht.Node
	// Overlay is the DHT abstraction DHS runs over.
	Overlay = dht.Overlay
	// Traffic is the global bytes/hops/messages meter.
	Traffic = sim.Traffic
	// FaultConfig parameterizes the fault-injection layer: message loss,
	// transient down-windows, and slow-node timeouts.
	FaultConfig = faultdht.Config
	// FaultStats counts the faults the injection layer has delivered.
	FaultStats = faultdht.Stats
	// FaultOverlay is a fault-injecting wrapper around an Overlay.
	FaultOverlay = faultdht.Overlay
)

// Typed errors DHS operations return or wrap. Counting degrades
// gracefully — remote faults reduce Estimate.Quality rather than
// surfacing here — so these appear mainly from insertions with retries
// disabled (Config.InsertRetries < 0) and from dead or unreachable
// query origins.
var (
	// ErrNodeDown reports an operation on or through a failed node.
	ErrNodeDown = dht.ErrNodeDown
	// ErrTimeout reports an exchange with a slow node that timed out.
	ErrTimeout = dht.ErrTimeout
	// ErrLost reports a message the network dropped.
	ErrLost = dht.ErrLost
	// ErrNoRoute reports that no live node could originate the operation.
	ErrNoRoute = dht.ErrNoRoute
)

// Estimator kinds.
const (
	// PCSA selects Probabilistic Counting with Stochastic Averaging
	// (Flajolet & Martin 1985) — the paper's DHS-PCSA.
	PCSA = sketch.KindPCSA
	// SuperLogLog selects truncated LogLog counting (Durand & Flajolet
	// 2003) — the paper's DHS-sLL, and the default.
	SuperLogLog = sketch.KindSuperLogLog
	// LogLog selects plain LogLog counting.
	LogLog = sketch.KindLogLog
	// HyperLogLog is an extension beyond the paper: the successor
	// estimator runs on the same distributed state for free.
	HyperLogLog = sketch.KindHyperLogLog
)

// Histogram types (§4.3 of the paper).
type (
	// HistogramSpec describes bucket layout over an attribute.
	HistogramSpec = histogram.Spec
	// Histogram is a reconstructed histogram with per-bucket estimates.
	Histogram = histogram.Histogram
	// HistogramBuilder records tuples under their bucket's metric.
	HistogramBuilder = histogram.Builder
)

// Optimizer types.
type (
	// TableStats feeds relation statistics to the join optimizer.
	TableStats = optimizer.TableStats
	// Plan is an optimized join tree with estimated shipped bytes.
	Plan = optimizer.Plan
)

// Observability types (internal/obs). A Tracer attached to a Network
// receives one structured event per lookup, probe, walk step, store,
// TTL expiry, and injected fault, timestamped in virtual clock ticks.
// Tracing is strictly opt-in: with no tracer attached the instrumented
// hot paths pay a single nil check per event site.
type (
	// Tracer receives simulation events; implementations must be safe
	// for concurrent use (all sinks in this package are).
	Tracer = obs.Tracer
	// TraceEvent is one structured simulation event.
	TraceEvent = obs.Event
	// TraceKind discriminates event types (lookup, probe, store, ...).
	TraceKind = obs.Kind
	// TraceRing is a bounded in-memory sink keeping the latest events —
	// a flight recorder for tests and failure dumps.
	TraceRing = obs.Ring
	// TraceAggregator folds events into per-node load distributions,
	// a per-bit probe heatmap, and a hop histogram.
	TraceAggregator = obs.Aggregator
	// LoadReport is a TraceAggregator summary with percentiles and Gini
	// coefficients — the measured form of the paper's uniform-load claim.
	LoadReport = obs.LoadReport
	// CountersSummary distributes the nodes' own load counters.
	CountersSummary = dht.CountersSummary
	// Distribution is a summarized sample set (mean, percentiles, Gini).
	Distribution = stats.Distribution
)

// NewTraceRing returns a flight-recorder sink holding the last capacity
// events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// NewTraceJSONL returns a sink streaming events to w as one JSON object
// per line. Call Flush when done.
func NewTraceJSONL(w io.Writer) *obs.JSONL { return obs.NewJSONL(w) }

// NewTraceAggregator returns an aggregating metrics sink.
func NewTraceAggregator() *TraceAggregator { return obs.NewAggregator() }

// MultiTracer fans events out to several sinks; nil sinks are skipped.
func MultiTracer(sinks ...Tracer) Tracer { return obs.Multi(sinks...) }

// Network bundles a deterministic simulation environment with a
// Chord-like overlay — everything a DHS needs to run in-process. For a
// real deployment, implement the Overlay interface over your DHT and
// pass it through Config instead.
type Network struct {
	// Env exposes the virtual clock and the global traffic meter.
	Env *sim.Env
	// Ring is the Chord-like overlay.
	Ring *chord.Ring

	// faults, when set by InjectFaults, wraps Ring for every DHS created
	// afterwards.
	faults *faultdht.Overlay
}

// NewNetwork creates an n-node simulated overlay seeded deterministically.
func NewNetwork(seed uint64, n int) *Network {
	env := sim.NewEnv(seed)
	return &Network{Env: env, Ring: chord.New(env, n)}
}

// Nodes returns the overlay's live nodes in ring order.
func (n *Network) Nodes() []Node { return n.Ring.Nodes() }

// RandomNode returns a uniformly chosen live node.
func (n *Network) RandomNode() Node { return n.Ring.RandomNode() }

// AdvanceClock moves the virtual clock forward (soft-state TTLs age).
func (n *Network) AdvanceClock(ticks int64) { n.Env.Clock.Advance(ticks) }

// TrafficTotal returns the cumulative network traffic so far.
func (n *Network) TrafficTotal() Traffic { return n.Env.Traffic.Snapshot() }

// FailNodes crashes k random nodes (their soft state is lost).
func (n *Network) FailNodes(k int) { n.Ring.FailRandom(k) }

// AttachTracer attaches (or, with nil, detaches) an observability sink:
// every subsequent lookup, probe, walk step, store, expiry, and injected
// fault on this network streams to it. Attach before starting operations
// — the sink reference is read without synchronization by concurrent
// counting passes.
func (n *Network) AttachTracer(t Tracer) { n.Env.SetTracer(t) }

// LoadSummary distributes the nodes' load counters (messages routed,
// probes answered, stores handled) across the overlay — the measured
// form of the paper's uniform-load constraint. It needs no tracer: the
// counters are always on.
func (n *Network) LoadSummary() CountersSummary {
	return dht.SummarizeCounters(n.Ring.Nodes())
}

// InjectFaults interposes a deterministic fault-injection layer between
// the overlay and every DHS created afterwards: messages drop with
// cfg.DropProb, a cfg.TransientFrac fraction of nodes cycle through
// clock-driven down-windows, and slow nodes time out. Returns the layer
// for its Stats. Call before New/NewPCSA/NewWithKind — handles created
// earlier keep talking to the pristine ring.
func (n *Network) InjectFaults(cfg FaultConfig) *FaultOverlay {
	n.faults = faultdht.New(n.Ring, n.Env, cfg)
	return n.faults
}

// overlay returns the ring, behind the fault layer if one is installed.
func (n *Network) overlay() Overlay {
	if n.faults != nil {
		return n.faults
	}
	return n.Ring
}

// New creates a super-LogLog DHS (the paper's DHS-sLL, its strongest
// configuration) over the network. Zero fields of cfg take the paper's
// §5.1 defaults; cfg.Overlay, cfg.Env, and cfg.Kind are filled in. Use
// NewPCSA or NewWithKind for the other estimator families.
func New(net *Network, cfg Config) (*DHS, error) {
	return NewWithKind(net, cfg, sketch.KindSuperLogLog)
}

// NewPCSA creates a DHS using the PCSA estimator (DHS-PCSA in the
// paper's terminology).
func NewPCSA(net *Network, cfg Config) (*DHS, error) {
	return NewWithKind(net, cfg, sketch.KindPCSA)
}

// NewWithKind creates a DHS with an explicit estimator family.
func NewWithKind(net *Network, cfg Config, kind sketch.Kind) (*DHS, error) {
	cfg.Overlay = net.overlay()
	cfg.Env = net.Env
	cfg.Kind = kind
	return core.New(cfg)
}

// MetricID derives a metric identifier from a name. All nodes agree on
// the identifier without coordination.
func MetricID(name string) uint64 { return core.MetricID(name) }

// ItemID derives an item's 64-bit DHT key from a label (stand-in for
// hashing real content).
func ItemID(label string) uint64 { return core.ItemID(label) }

// NewHistogramBuilder validates the spec and returns a builder that
// records tuples into the DHS under per-bucket metrics.
func NewHistogramBuilder(d *DHS, spec HistogramSpec) (*HistogramBuilder, error) {
	return histogram.NewBuilder(d, spec)
}

// ReconstructHistogram estimates all buckets of the spec's histogram in
// one multi-dimensional counting pass from node src (§4.2: the hop cost
// is independent of the bucket count).
func ReconstructHistogram(d *DHS, spec HistogramSpec, src Node) (*Histogram, error) {
	return histogram.Reconstruct(d, spec, src)
}

// HistogramFromCounts wraps exact bucket counts for ground-truth
// comparisons and exact-statistics optimization.
func HistogramFromCounts(spec HistogramSpec, counts []int) *Histogram {
	return histogram.FromCounts(spec, counts)
}

// OptimizeJoin returns the cheapest join tree for the relations under
// the distributed symmetric-hash-join cost model (bytes shipped).
func OptimizeJoin(tables []TableStats) Plan { return optimizer.Optimize(tables) }

// LeftDeepJoin builds the left-deep plan following the given order — the
// behaviour of a statistics-less executor.
func LeftDeepJoin(tables []TableStats, order []int) Plan {
	return optimizer.LeftDeepPlan(tables, order)
}

// RetryLimit evaluates the paper's eq. 6: probes needed to find a
// non-empty node with probability ≥ p in an interval of nNodes nodes
// holding nItems items over m vectors with `replicas` replicas.
func RetryLimit(nNodes, nItems float64, p float64, m, replicas int) int {
	return core.RetryLimit(nNodes, nItems, p, m, replicas)
}
