#!/usr/bin/env bash
# smoke.sh — multi-process end-to-end smoke test of the netdht
# deployment path: build dhsnode, start an N-process ring on loopback
# with admin endpoints enabled, insert a known workload through one
# member, require the counted estimate to land within the estimator's
# error envelope, and scrape every node's /metrics and /healthz —
# asserting the ring reports healthy and actually metered RPC traffic.
# Scraped metrics land in $LOGDIR/metrics-*.prom (a CI artifact).
#
# This is the one test in the repository where separate OS processes
# form a real Chord ring over TCP; everything the simulator cannot
# vouch for (framing, deadlines, join/stabilize over sockets, process
# shutdown) is on the line here. CI runs it per push; run it locally
# with `make smoke`.
#
# Environment:
#   NODES   ring size                (default 5)
#   ITEMS   distinct items inserted  (default 2000)
#   TOL     accepted relative error  (default 0.35; m=64 sLL ≈ 13% σ)
#   LOGDIR  node log directory       (default ./smoke-logs)
#
# Ports are dynamic: every node listens on 127.0.0.1:0 and the script
# reads the kernel-assigned address back from the node's "serving on"
# log line, so concurrent smoke runs (or anything else on the host)
# never collide on a fixed port range.
set -euo pipefail

NODES="${NODES:-5}"
ITEMS="${ITEMS:-2000}"
TOL="${TOL:-0.35}"
LOGDIR="${LOGDIR:-smoke-logs}"

cd "$(dirname "$0")/.."
mkdir -p "$LOGDIR"
BIN="$LOGDIR/dhsnode"

echo "== building dhsnode, dhsd, dhsload"
go build -o "$BIN" ./cmd/dhsnode
go build -o "$LOGDIR/dhsd" ./cmd/dhsd
go build -o "$LOGDIR/dhsload" ./cmd/dhsload

PIDS=()
cleanup() {
    local status=$?
    for pid in "${PIDS[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    if [ "$status" -ne 0 ]; then
        echo "== smoke FAILED (exit $status); node logs:"
        for f in "$LOGDIR"/node-*.log; do
            echo "---- $f"
            cat "$f"
        done
    fi
    exit "$status"
}
trap cleanup EXIT

# wait_for_addr LOGFILE — poll the node log for the "serving on ADDR"
# line and print ADDR. The daemon logs it right after binding, so this
# doubles as the startup barrier.
wait_for_addr() {
    local logfile=$1 addr
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*serving on \([0-9.]*:[0-9]*\).*/\1/p' "$logfile" 2>/dev/null | head -n1)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "== $logfile never reported a listen address" >&2
    return 1
}

# wait_for_admin LOGFILE — same barrier for the "admin on ADDR" line.
wait_for_admin() {
    local logfile=$1 addr
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/.*admin on \([0-9.]*:[0-9]*\).*/\1/p' "$logfile" 2>/dev/null | head -n1)
        if [ -n "$addr" ]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "== $logfile never reported an admin address" >&2
    return 1
}

# metric_value FILE NAME_WITH_LABELS — print the sample value, 0 if the
# series is absent.
metric_value() {
    awk -v name="$2" '$1 == name { print $2; found = 1 } END { if (!found) print 0 }' "$1"
}

echo "== starting $NODES-node ring (dynamic ports, admin endpoints on)"
"$BIN" serve -listen 127.0.0.1:0 -admin 127.0.0.1:0 -name node-0 >"$LOGDIR/node-0.log" 2>&1 &
PIDS+=($!)
ENTRY=$(wait_for_addr "$LOGDIR/node-0.log")
echo "== bootstrap $ENTRY"
for i in $(seq 1 $((NODES - 1))); do
    "$BIN" serve -listen 127.0.0.1:0 -admin 127.0.0.1:0 -join "$ENTRY" -name "node-$i" \
        >"$LOGDIR/node-$i.log" 2>&1 &
    PIDS+=($!)
done

# Joins retry internally; give the wall-clock maintenance a moment to
# close the ring before loading it.
sleep 2

for pid in "${PIDS[@]}"; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "== a node exited during startup" >&2
        exit 1
    fi
done

echo "== inserting $ITEMS items"
"$BIN" insert -entry "$ENTRY" -metric smoke -items "$ITEMS" | tee "$LOGDIR/insert.log"

echo "== counting (expect $ITEMS, tol $TOL)"
"$BIN" count -entry "$ENTRY" -metric smoke -expect "$ITEMS" -tol "$TOL" | tee "$LOGDIR/count.log"

echo "== scraping /healthz and /metrics on every node"
for i in $(seq 0 $((NODES - 1))); do
    ADMIN=$(wait_for_admin "$LOGDIR/node-$i.log")

    health=$(curl -fsS --max-time 5 "http://$ADMIN/healthz")
    if [ "$health" != "ok" ]; then
        echo "== node-$i /healthz = '$health', want 'ok'" >&2
        exit 1
    fi

    curl -fsS --max-time 5 "http://$ADMIN/metrics" >"$LOGDIR/metrics-node-$i.prom"

    # Every node served routing traffic (insert/count lookups enter at
    # the bootstrap, but find_succ hops and probes land ring-wide), and
    # its ring gauges report a linked member with live successors.
    rpc=$(metric_value "$LOGDIR/metrics-node-$i.prom" 'netdht_rpc_requests_total{tag="find_succ"}')
    if [ "${rpc%.*}" -eq 0 ]; then
        echo "== node-$i metered zero find_succ requests" >&2
        exit 1
    fi
    succ=$(metric_value "$LOGDIR/metrics-node-$i.prom" 'netdht_successors')
    if [ "${succ%.*}" -eq 0 ]; then
        echo "== node-$i reports an empty successor list" >&2
        exit 1
    fi
    echo "   node-$i healthy; find_succ=$rpc successors=$succ"
done

# The counting scan's probe RPCs land on the interval owners, spread
# over the ring: the ring-wide total must be nonzero.
probes=0
for i in $(seq 0 $((NODES - 1))); do
    p=$(metric_value "$LOGDIR/metrics-node-$i.prom" 'netdht_rpc_requests_total{tag="probe"}')
    probes=$((probes + ${p%.*}))
done
if [ "$probes" -eq 0 ]; then
    echo "== ring metered zero probe requests" >&2
    exit 1
fi
echo "   ring-wide probe requests: $probes"

echo "== dhsnode status against the bootstrap"
ADMIN0=$(wait_for_admin "$LOGDIR/node-0.log")
"$BIN" status "$ADMIN0" | tee "$LOGDIR/status.log"
grep -q 'health ok=true' "$LOGDIR/status.log" || {
    echo "== dhsnode status did not report a healthy node" >&2
    exit 1
}

echo "== dhsd query frontend + dhsload"
# Start dhsd over the same ring and drive it with a short closed-loop
# dhsload run. Low load against a warm cache must show cache hits and
# shed nothing; the JSON report (qps, p50/p99/p999) is a CI artifact.
"$LOGDIR/dhsd" -entry "$ENTRY" -listen 127.0.0.1:0 -cache-ttl 1s >"$LOGDIR/dhsd.log" 2>&1 &
PIDS+=($!)
DHSD=""
for _ in $(seq 1 100); do
    DHSD=$(sed -n 's/.*serving estimates on \([0-9.]*:[0-9]*\).*/\1/p' "$LOGDIR/dhsd.log" 2>/dev/null | head -n1)
    if [ -n "$DHSD" ]; then
        break
    fi
    sleep 0.1
done
if [ -z "$DHSD" ]; then
    echo "== dhsd never reported a listen address" >&2
    exit 1
fi
echo "== dhsd on $DHSD"

"$LOGDIR/dhsload" -target "http://$DHSD" -concurrency 4 -metrics 1 -prefix smoke \
    -duration 2s -warmup 300ms -json >"$LOGDIR/dhsload.json"
cat "$LOGDIR/dhsload.json"

grep -q '"errors":0,' "$LOGDIR/dhsload.json" || {
    echo "== dhsload reported request errors" >&2
    exit 1
}
grep -q '"shed":0,' "$LOGDIR/dhsload.json" || {
    echo "== dhsd shed queries at low load" >&2
    exit 1
}
p99=$(sed -n 's/.*"p99_ms":\([0-9.]*\).*/\1/p' "$LOGDIR/dhsload.json")
echo "   dhsload p99 = ${p99}ms (report: $LOGDIR/dhsload.json)"

curl -fsS --max-time 5 "http://$DHSD/metrics" >"$LOGDIR/metrics-dhsd.prom"
hits=$(metric_value "$LOGDIR/metrics-dhsd.prom" 'dhsd_cache_requests_total{result="hit"}')
if [ "${hits%.*}" -eq 0 ]; then
    echo "== dhsd served a Zipf-hot workload with zero cache hits" >&2
    exit 1
fi
echo "   dhsd cache hits: $hits"

curl -fsS --max-time 5 "http://$DHSD/healthz" >/dev/null || {
    echo "== dhsd /healthz failed against a live ring" >&2
    exit 1
}

echo "== clean shutdown"
for pid in "${PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
done
PIDS=()

echo "== smoke OK"
